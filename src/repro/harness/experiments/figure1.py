"""Figure 1 (+ Figure 2): the running example.

Figure 1 reports the BC score of each vertex of the 9-vertex example
graph; Figure 2 contrasts how the three thread-distribution schemes
map threads to the second BFS iteration from vertex 4.  This
experiment recomputes both: the exact scores (checking the text's
claims — vertex 4 highest, vertices 8 and 9 zero) and the per-scheme
work counts for that iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...bc.api import betweenness_centrality
from ...graph.generators.example import figure1_graph
from ..tables import format_table

__all__ = ["Figure1Result", "run", "render"]


@dataclass(frozen=True)
class Figure1Result:
    """Scores plus the Figure 2 work-assignment comparison."""

    bc: np.ndarray                     # per-vertex scores (0-indexed)
    frontier_iteration2: np.ndarray    # paper labels of the 2nd-iteration frontier
    threads_vertex_parallel: int
    threads_edge_parallel: int
    threads_work_efficient: int
    edges_needing_traversal: int

    @property
    def argmax_paper_label(self) -> int:
        """1-based label of the highest-BC vertex (the paper's vertex 4)."""
        return int(np.argmax(self.bc)) + 1


def run() -> Figure1Result:
    """Recompute Figure 1's scores and Figure 2's work distribution."""
    g = figure1_graph()
    bc = betweenness_centrality(g)
    # Second iteration of the BFS from paper-vertex 4 (index 3): the
    # frontier is 4's neighbour set.
    root = 3
    frontier = np.sort(g.neighbors(root))
    deg = g.degrees
    return Figure1Result(
        bc=bc,
        frontier_iteration2=frontier + 1,
        threads_vertex_parallel=g.num_vertices,       # one thread per vertex
        threads_edge_parallel=g.num_directed_edges,   # one thread per edge
        threads_work_efficient=int(frontier.size),    # one per frontier vertex
        edges_needing_traversal=int(deg[frontier].sum()),
    )


def render(result: Figure1Result | None = None) -> str:
    """Text rendering of the Figure 1 scores and Figure 2 counts."""
    r = run() if result is None else result
    score_rows = [(i + 1, f"{v:.2f}") for i, v in enumerate(r.bc)]
    out = [format_table(["vertex", "BC"], score_rows,
                        title="Figure 1 — example-graph BC scores")]
    out.append("")
    out.append(format_table(
        ["method", "threads assigned (iteration 2 from vertex 4)"],
        [("vertex-parallel", r.threads_vertex_parallel),
         ("edge-parallel", r.threads_edge_parallel),
         ("work-efficient", r.threads_work_efficient)],
        title="Figure 2 — thread-to-work distribution "
              f"(frontier = {[int(v) for v in r.frontier_iteration2]}, "
              f"{r.edges_needing_traversal} edges actually need traversal)",
    ))
    return "\n".join(out)
