"""Table II — structural statistics of the dataset suite.

Rebuilds every stand-in dataset at the configured scale and measures
the columns the paper reports: vertices, edges, max degree, diameter.
The reproduction target is the structural *class* of each dataset
(degree regime, edge/vertex ratio, diameter regime), since the
stand-ins are generated rather than downloaded.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...graph.generators.suite import DATASETS
from ...graph.stats import GraphStats, graph_stats
from ..runner import ExperimentConfig, load_suite_graph
from ..tables import format_table

__all__ = ["Table2Result", "run", "render"]


@dataclass(frozen=True)
class Table2Result:
    rows: tuple  # of (GraphStats, DatasetSpec)

    def stats(self, name: str) -> GraphStats:
        for st, spec in self.rows:
            if spec.name == name:
                return st
        raise KeyError(name)


def run(cfg: ExperimentConfig | None = None, names=None) -> Table2Result:
    cfg = cfg or ExperimentConfig()
    rows = []
    for name in (names or DATASETS):
        spec = DATASETS[name]
        g = load_suite_graph(name, cfg)
        st = graph_stats(g, exact=False, diameter_samples=4, seed=cfg.seed,
                         description=spec.description)
        rows.append((st, spec))
    return Table2Result(rows=tuple(rows))


def render(result: Table2Result | None = None,
           cfg: ExperimentConfig | None = None) -> str:
    cfg = cfg or ExperimentConfig()
    r = run(cfg) if result is None else result
    rows = [
        (spec.name, st.num_vertices, st.num_edges, st.max_degree,
         st.diameter, spec.graph_class, st.description)
        for st, spec in r.rows
    ]
    return format_table(
        ["Graph", "Vertices", "Edges", "Max degree", "Diameter", "Class",
         "Description"],
        rows,
        title=(f"Table II — dataset suite at 1/{cfg.scale_factor} of paper "
               "scale (synthetic stand-ins)"),
    )
