"""Figure 3 — evolution of vertex frontiers for five graph classes.

Three roots per graph; the series is the per-iteration frontier size
as a percentage of n.  Reproduction target: rgg / delaunay /
luxembourg frontiers stay small (peak well under ~10% of n) and evolve
gradually over many iterations, while kron / smallworld balloon past
half the graph within a handful of iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...metrics.frontier import FrontierEvolution, frontier_evolution
from ..runner import ExperimentConfig, load_suite_graph, pick_roots
from ..tables import format_table

__all__ = ["GRAPHS", "Figure3Result", "run", "render"]

GRAPHS = ["rgg_n_2_20", "delaunay_n20", "kron_g500-logn20",
          "luxembourg.osm", "smallworld"]


@dataclass(frozen=True)
class Figure3Result:
    series: tuple  # of FrontierEvolution

    def by_graph(self, name: str) -> list:
        return [s for s in self.series if s.graph == name]


def run(cfg: ExperimentConfig | None = None,
        roots_per_graph: int = 3) -> Figure3Result:
    cfg = cfg or ExperimentConfig()
    series = []
    for name in GRAPHS:
        g = load_suite_graph(name, cfg)
        for root in pick_roots(g, roots_per_graph, seed=cfg.seed):
            series.append(frontier_evolution(g, int(root)))
    return Figure3Result(series=tuple(series))


def render(result: Figure3Result | None = None,
           cfg: ExperimentConfig | None = None) -> str:
    r = run(cfg) if result is None else result
    rows = [
        (s.graph, s.root, s.num_levels, f"{s.peak_percentage:.2f}%",
         _sparkline(s))
        for s in r.series
    ]
    return format_table(
        ["Graph", "Root", "Iterations", "Peak frontier (% of n)", "Shape"],
        rows,
        title="Figure 3 — vertex-frontier evolution (three roots per graph)",
    )


_BLOCKS = " .:-=+*#%@"


def _sparkline(evo: FrontierEvolution, width: int = 30) -> str:
    """ASCII sparkline of the frontier series (downsampled to width)."""
    pct = evo.percentages
    if pct.size == 0:
        return ""
    if pct.size > width:
        import numpy as np

        idx = np.linspace(0, pct.size - 1, width).astype(int)
        pct = pct[idx]
    peak = max(float(pct.max()), 1e-12)
    chars = [_BLOCKS[min(int(p / peak * (len(_BLOCKS) - 1)), len(_BLOCKS) - 1)]
             for p in pct]
    return "".join(chars)
