"""Table III — MTEPS of the edge-parallel baseline vs. the sampling
method across eight graphs.

The paper reports per-graph MTEPS for both methods, the per-graph
speedup, and a 2.71x geometric-mean speedup overall.  The reproduction
target: sampling wins by ~an order of magnitude on the high-diameter
graphs (af_shell9, delaunay, luxembourg — the paper sees 13.3x, 10.2x,
8.3x), and is roughly at parity (1.0-1.6x) on the scale-free and
small-world graphs, with a geometric mean in the low single digits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...gpusim.device import Device
from ..runner import ExperimentConfig, load_suite_graph, pick_roots
from ..tables import format_table

__all__ = ["GRAPHS", "Table3Row", "Table3Result", "run", "render"]

#: The eight graphs of Table III (the suite minus rgg and kron, which
#: the Jia et al. reference code cannot read — Section V-B).
GRAPHS = ["af_shell9", "caidaRouterLevel", "cnr-2000", "com-amazon",
          "delaunay_n20", "loc-gowalla", "luxembourg.osm", "smallworld"]


@dataclass(frozen=True)
class Table3Row:
    graph: str
    edge_parallel_mteps: float
    sampling_mteps: float

    @property
    def speedup(self) -> float:
        if self.edge_parallel_mteps == 0:
            return float("inf")
        return self.sampling_mteps / self.edge_parallel_mteps


@dataclass(frozen=True)
class Table3Result:
    rows: tuple

    @property
    def geomean_speedup(self) -> float:
        vals = [r.speedup for r in self.rows if r.speedup > 0]
        if not vals:
            return float("nan")
        return math.exp(sum(math.log(v) for v in vals) / len(vals))

    def row(self, name: str) -> Table3Row:
        for r in self.rows:
            if r.graph == name:
                return r
        raise KeyError(name)


def run(cfg: ExperimentConfig | None = None, names=None) -> Table3Result:
    cfg = cfg or ExperimentConfig()
    device = Device(cfg.gpu)
    rows = []
    for name in (names or GRAPHS):
        g = load_suite_graph(name, cfg)
        roots = pick_roots(g, cfg.root_sample, seed=cfg.seed)
        ep = device.run_bc(g, strategy="edge-parallel", roots=roots)
        # The sampling phase classifies from the first roots it is
        # given; cap n_samps below the sample so phase 2 exists, and
        # extrapolate to a full-n run so the fixed classification cost
        # amortises exactly as it does in the paper (512 of n roots).
        samp = device.run_bc(g, strategy="sampling", roots=roots,
                             n_samps=max(1, roots.size // 3),
                             min_frontier=cfg.min_frontier)
        rows.append(Table3Row(
            graph=name,
            edge_parallel_mteps=ep.extrapolated_mteps(),
            sampling_mteps=samp.extrapolated_mteps(),
        ))
    return Table3Result(rows=tuple(rows))


def render(result: Table3Result | None = None,
           cfg: ExperimentConfig | None = None) -> str:
    r = run(cfg) if result is None else result
    rows = [
        (row.graph, f"{row.edge_parallel_mteps:.2f}",
         f"{row.sampling_mteps:.2f}", f"{row.speedup:.2f}x")
        for row in r.rows
    ]
    rows.append(("Geometric mean", "", "", f"{r.geomean_speedup:.2f}x"))
    return format_table(
        ["Graph", "Edge-parallel (MTEPS)", "Sampling (MTEPS)", "Speedup"],
        rows,
        title="Table III — edge-parallel vs sampling performance",
    )
