"""Table I — correlation of frontier sizes with iteration time.

For three roots of each of five structurally distinct graphs, run the
work-efficient method and correlate per-iteration simulated time with
the vertex- and edge-frontier sizes.  The reproduction target is the
*shape*: rho_{v,t} high (>~0.7) on every graph, rho_{e,t} comparable
on uniform-degree graphs but collapsing on the Kronecker graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...gpusim.device import Device
from ...metrics.correlation import FrontierCorrelation, frontier_time_correlations
from ..runner import ExperimentConfig, load_suite_graph, pick_roots
from ..tables import format_table

__all__ = ["GRAPHS", "Table1Result", "run", "render"]

#: The five graphs of Table I.
GRAPHS = ["rgg_n_2_20", "delaunay_n20", "kron_g500-logn20",
          "luxembourg.osm", "smallworld"]


@dataclass(frozen=True)
class Table1Result:
    rows: tuple  # of FrontierCorrelation

    def by_graph(self, name: str) -> list:
        return [r for r in self.rows if r.graph == name]

    def min_vertex_corr(self) -> float:
        return min(r.rho_vertex_time for r in self.rows)


def run(cfg: ExperimentConfig | None = None, roots_per_graph: int = 3) -> Table1Result:
    """Compute the correlation rows (3 roots x 5 graphs by default)."""
    cfg = cfg or ExperimentConfig()
    device = Device(cfg.gpu)
    rows = []
    for name in GRAPHS:
        g = load_suite_graph(name, cfg)
        roots = pick_roots(g, roots_per_graph, seed=cfg.seed)
        dev_run = device.run_bc(g, strategy="work-efficient", roots=roots)
        for rt in dev_run.trace.roots:
            rows.append(frontier_time_correlations(rt, graph_name=name))
    return Table1Result(rows=tuple(rows))


def render(result: Table1Result | None = None,
           cfg: ExperimentConfig | None = None) -> str:
    r = run(cfg) if result is None else result
    rows = [(c.graph, c.root, f"{c.rho_vertex_time:.3f}", f"{c.rho_edge_time:.3f}")
            for c in r.rows]
    return format_table(
        ["Graph", "Root", "rho_v,t", "rho_e,t"], rows,
        title="Table I — frontier-size/time correlations (work-efficient method)",
    )
