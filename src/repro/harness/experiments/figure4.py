"""Figure 4 — work-efficient / hybrid / sampling speedups over the
edge-parallel baseline.

Reproduction targets (Section IV-C's discussion of the figure):

* on road networks and meshes (af_shell, delaunay, luxembourg) *all*
  three methods beat edge-parallel by around an order of magnitude,
  with the pure work-efficient method fastest (the adaptive methods
  pay "the cost of generality");
* on the scale-free and small-world graphs, work-efficient alone is at
  or below edge-parallel parity, while hybrid and sampling are at
  parity or slightly better.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...gpusim.device import Device
from ..runner import ExperimentConfig, load_suite_graph, pick_roots
from ..tables import format_table

__all__ = ["GRAPHS", "Figure4Row", "Figure4Result", "run", "render"]

GRAPHS = ["af_shell9", "caidaRouterLevel", "cnr-2000", "com-amazon",
          "delaunay_n20", "loc-gowalla", "luxembourg.osm", "smallworld"]

METHODS = ("work-efficient", "hybrid", "sampling")


@dataclass(frozen=True)
class Figure4Row:
    graph: str
    edge_parallel_seconds: float
    seconds: dict  # method -> simulated seconds

    def speedup(self, method: str) -> float:
        t = self.seconds[method]
        if t == 0:
            return float("inf")
        return self.edge_parallel_seconds / t


@dataclass(frozen=True)
class Figure4Result:
    rows: tuple

    def row(self, name: str) -> Figure4Row:
        for r in self.rows:
            if r.graph == name:
                return r
        raise KeyError(name)


def run(cfg: ExperimentConfig | None = None, names=None) -> Figure4Result:
    cfg = cfg or ExperimentConfig()
    device = Device(cfg.gpu)
    rows = []
    for name in (names or GRAPHS):
        g = load_suite_graph(name, cfg)
        roots = pick_roots(g, cfg.root_sample, seed=cfg.seed)
        ep = device.run_bc(g, strategy="edge-parallel", roots=roots)
        seconds = {}
        for method in METHODS:
            kwargs = {}
            if method == "sampling":
                kwargs["n_samps"] = max(1, roots.size // 3)
                kwargs["min_frontier"] = cfg.min_frontier
            elif method == "hybrid":
                kwargs["alpha"] = cfg.alpha
                kwargs["beta"] = cfg.beta
            run_ = device.run_bc(g, strategy=method, roots=roots, **kwargs)
            seconds[method] = run_.extrapolated_seconds()
        rows.append(Figure4Row(graph=name,
                               edge_parallel_seconds=ep.extrapolated_seconds(),
                               seconds=seconds))
    return Figure4Result(rows=tuple(rows))


def render(result: Figure4Result | None = None,
           cfg: ExperimentConfig | None = None) -> str:
    r = run(cfg) if result is None else result
    rows = [
        (row.graph,
         f"{row.speedup('work-efficient'):.2f}x",
         f"{row.speedup('hybrid'):.2f}x",
         f"{row.speedup('sampling'):.2f}x")
        for row in r.rows
    ]
    return format_table(
        ["Graph", "Work-efficient", "Hybrid", "Sampling"],
        rows,
        title="Figure 4 — speedup over the edge-parallel baseline",
    )
