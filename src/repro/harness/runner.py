"""Shared experiment plumbing.

All experiments accept a ``scale_factor`` (how much smaller than the
paper's instances to build the Table II graphs — the default 64 keeps
the full harness comfortably inside a laptop's budget) and a
``root_sample`` (how many BC roots to actually execute; full-n runs
are extrapolated per the uniform-per-root-cost argument the paper
itself relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.generators.suite import DATASETS, make_dataset
from ..gpusim.device import Device, DeviceRun
from ..gpusim.spec import GTX_TITAN, GPUSpec

__all__ = ["ExperimentConfig", "pick_roots", "timed_run", "load_suite_graph"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment.

    The paper's strategy thresholds (alpha = 768, beta = 512 for the
    hybrid method, a 512-vertex frontier guard for sampling) are
    architecture constants tuned against paper-scale graphs.  When the
    suite is built at ``1/scale_factor`` of paper size, typical frontier
    sizes shrink roughly with the square root of the factor for the
    mesh/road families (frontier ~ n / diameter, and mesh diameters
    scale as sqrt(n)), so the harness scales the thresholds by
    ``sqrt(scale_factor)`` to keep the level classification equivalent.
    At ``scale_factor=1`` they are exactly the paper's values.
    """

    scale_factor: int = 64
    root_sample: int = 24
    seed: int = 0
    gpu: GPUSpec = GTX_TITAN

    def __post_init__(self) -> None:
        if self.scale_factor < 1:
            raise ValueError("scale_factor must be >= 1")
        if self.root_sample < 1:
            raise ValueError("root_sample must be >= 1")

    @property
    def _threshold_divisor(self) -> float:
        return max(1.0, float(self.scale_factor) ** 0.5)

    @property
    def alpha(self) -> int:
        """Hybrid frontier-change threshold, scaled from 768."""
        return max(2, int(768 / self._threshold_divisor))

    @property
    def beta(self) -> int:
        """Hybrid next-frontier threshold, scaled from 512."""
        return max(2, int(512 / self._threshold_divisor))

    @property
    def min_frontier(self) -> int:
        """Sampling per-iteration edge-parallel guard, scaled from 512."""
        return max(2, int(512 / self._threshold_divisor))


def load_suite_graph(name: str, cfg: ExperimentConfig) -> CSRGraph:
    """Build one Table II dataset under the experiment config."""
    return make_dataset(name, scale_factor=cfg.scale_factor, seed=cfg.seed)


def pick_roots(g: CSRGraph, k: int, seed: int = 0,
               require_degree: bool = True) -> np.ndarray:
    """Sample ``k`` distinct roots, preferring non-isolated vertices so
    every sampled BFS does representative work."""
    n = g.num_vertices
    rng = np.random.default_rng(seed)
    pool = np.flatnonzero(g.degrees > 0) if require_degree else np.arange(n)
    if pool.size == 0:
        pool = np.arange(n)
    k = min(int(k), pool.size)
    return np.sort(rng.choice(pool, size=k, replace=False)).astype(np.int64)


def timed_run(device: Device, g: CSRGraph, strategy: str,
              roots: np.ndarray, **kwargs) -> DeviceRun:
    """One device run (thin alias that keeps experiment modules terse)."""
    return device.run_bc(g, strategy=strategy, roots=roots, **kwargs)
