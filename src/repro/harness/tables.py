"""Plain-text table rendering for experiment output.

Keeps the harness dependency-free: every experiment prints fixed-width
tables comparable, row for row, with the paper's tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_kv", "format_series"]


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".") if "." in f"{value:.3f}" else f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render a fixed-width table with a separator under the header."""
    srows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_kv(pairs: dict, title: str = "") -> str:
    """Render key/value pairs, one per line."""
    width = max((len(str(k)) for k in pairs), default=0)
    lines = [title] if title else []
    for k, v in pairs.items():
        lines.append(f"{str(k).ljust(width)} : {_fmt_cell(v)}")
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render one figure curve as a two-column block."""
    rows = list(zip(xs, ys))
    return format_table([x_label, y_label], rows, title=name)
