"""Command-line interface: ``python -m repro <experiment> [options]``.

Regenerates any of the paper's tables/figures as plain text, e.g.::

    python -m repro table3 --scale-factor 32 --roots 24
    python -m repro figure5 --scales 10 11 12 13 14
    python -m repro all

``--scale-factor`` divides the paper's dataset sizes (64 by default);
``--roots`` sets how many BC roots are executed per run before
extrapolation.

Beyond the paper's artifacts, ``resilience`` runs the fault-tolerant
distributed driver against an injected fault plan::

    python -m repro resilience --faults "fail:1@reduce;oom:0x2" \
        --ranks 4 --max-retries 3

``profile`` runs one instrumented device run and writes a kernel
profile (schema ``repro.profile/v1``: per root, per BFS level —
frontier sizes, strategy chosen, charged cycles) plus the metrics
registry export::

    python -m repro profile --graph kron_g500-logn20 --scale-factor 4096 \
        --strategy sampling --roots 16 --out profile.json

Every command also accepts ``--metrics-out metrics.json`` to export the
run's metrics registry (``repro.observability/v1``).
"""

from __future__ import annotations

import argparse
import sys

from .harness.experiments import EXPERIMENTS
from .harness.runner import ExperimentConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bc",
        description="Regenerate tables/figures of McLaughlin & Bader, SC 2014",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "resilience", "profile"],
        help="which table/figure to regenerate ('all' for every paper "
             "artifact, 'resilience' for a fault-injected distributed run, "
             "'profile' for an instrumented device run exported as JSON)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics registry (counters/spans/histograms, "
             "schema repro.observability/v1) to this JSON file",
    )
    parser.add_argument("--scale-factor", type=int, default=64,
                        help="divide paper-scale dataset sizes by this (default 64)")
    parser.add_argument("--roots", type=int, default=24,
                        help="BC roots to execute per run (default 24)")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--scales", type=int, nargs="+", default=None,
                        help="scale sweep for figure5/figure6/table4")
    faults = parser.add_argument_group("resilience options")
    faults.add_argument(
        "--faults", default="fail:1@compute+1",
        help="fault plan, e.g. 'fail:1@reduce;oom:0x2;straggler:2x3' "
             "(default: kill rank 1 mid-compute)",
    )
    faults.add_argument("--ranks", type=int, default=4,
                        help="simulated ranks for the resilient run (default 4)")
    faults.add_argument("--max-retries", type=int, default=3,
                        help="recovery rounds before degrading (default 3)")
    faults.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds (default: none)")
    prof = parser.add_argument_group("profile options")
    prof.add_argument(
        "--graph", default="kron_g500-logn20",
        help="Table II dataset to profile (default kron_g500-logn20); "
             "sized by --scale-factor",
    )
    prof.add_argument(
        "--strategy", default="sampling",
        help="device strategy to profile (default sampling)",
    )
    prof.add_argument(
        "--out", default="profile.json", metavar="PATH",
        help="where the profile JSON is written (default profile.json)",
    )
    return parser


def _render_profile(args, metrics) -> str:
    """Run one instrumented device run and write the kernel profile."""
    import numpy as np

    from .graph.generators import make_dataset
    from .gpusim import Device
    from .observability import registry_to_dict, run_profile, write_json

    g = make_dataset(args.graph, scale_factor=args.scale_factor,
                     seed=args.seed)
    rng = np.random.default_rng(args.seed)
    roots = np.sort(rng.choice(g.num_vertices,
                               size=min(args.roots, g.num_vertices),
                               replace=False))
    run = Device().run_bc(g, strategy=args.strategy, roots=roots,
                          metrics=metrics)
    doc = run_profile(run, graph=g)
    reg = registry_to_dict(metrics)
    # One document: deterministic profile + metrics body; everything
    # wall-clock-dependent stays under the single "timing" key so two
    # seeded runs serialise byte-identically outside it.
    doc["metrics"] = {k: reg[k] for k in ("counters", "gauges", "histograms")}
    doc["timing"] = reg["timing"]
    write_json(args.out, doc)
    lines = [
        f"profile          : {args.out}",
        f"graph            : {g.name or args.graph} "
        f"(n={g.num_vertices}, m={g.num_edges})",
        f"strategy         : {run.strategy} ({run.num_roots} roots)",
        f"makespan cycles  : {run.cycles:.0f} "
        f"({run.seconds * 1e3:.3f} simulated ms, {run.mteps():.1f} MTEPS)",
        f"levels traced    : "
        f"{sum(len(rt.levels) for rt in run.trace.roots)}",
    ]
    return "\n".join(lines)


def _render_resilience(args, metrics=None) -> str:
    """Run the fault-tolerant distributed driver on a small graph and
    report the recovery record next to the serial ground truth."""
    import numpy as np

    from .bc.api import betweenness_centrality
    from .graph.generators import watts_strogatz
    from .resilience import FaultPlan, resilient_distributed_bc

    n = max(16, 12288 // max(1, args.scale_factor))
    g = watts_strogatz(n, k=6, p=0.1, seed=args.seed)
    plan = FaultPlan.parse(args.faults)
    run = resilient_distributed_bc(
        g, args.ranks, fault_plan=plan, max_retries=args.max_retries,
        wall_clock_budget=args.budget, seed=args.seed, metrics=metrics,
    )
    ref = betweenness_centrality(g)
    err = float(np.max(np.abs(run.values - ref)))
    lines = [
        "Resilient distributed BC (fault-injected Section V-D program)",
        f"graph            : {g.name or 'watts-strogatz'} "
        f"(n={g.num_vertices}, m={g.num_edges})",
        f"fault plan       : {args.faults}",
        run.summary(),
        f"max |err| vs serial: {err:.3e}"
        + ("" if run.exact else " (degraded roots are sampled estimates)"),
    ]
    return "\n".join(lines)


def _render(name: str, cfg: ExperimentConfig, scales) -> str:
    module = EXPERIMENTS[name]
    kwargs = {}
    if scales is not None and name in ("figure5", "figure6"):
        kwargs["scales"] = scales
    if scales is not None and name == "table4":
        kwargs["scale"] = scales[0]
    if name == "figure1":
        return module.render()
    return module.render(None, cfg, **kwargs) if kwargs else module.render(None, cfg)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    from .observability import MetricsRegistry, write_json

    metrics = MetricsRegistry()
    try:
        if args.experiment == "profile":
            print(_render_profile(args, metrics))
            print()
            return 0
        if args.experiment == "resilience":
            print(_render_resilience(args, metrics=metrics))
            print()
            return 0
        cfg = ExperimentConfig(scale_factor=args.scale_factor,
                               root_sample=args.roots, seed=args.seed)
        names = (sorted(EXPERIMENTS) if args.experiment == "all"
                 else [args.experiment])
        for name in names:
            with metrics.span("experiment", name=name):
                out = _render(name, cfg, args.scales)
            metrics.inc("cli.experiments_rendered", name=name)
            print(out)
            print()
        return 0
    finally:
        if args.metrics_out:
            write_json(args.metrics_out, metrics)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
