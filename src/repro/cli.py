"""Command-line interface: ``python -m repro <experiment> [options]``.

Regenerates any of the paper's tables/figures as plain text, e.g.::

    python -m repro table3 --scale-factor 32 --roots 24
    python -m repro figure5 --scales 10 11 12 13 14
    python -m repro all

``--scale-factor`` divides the paper's dataset sizes (64 by default);
``--roots`` sets how many BC roots are executed per run before
extrapolation.
"""

from __future__ import annotations

import argparse
import sys

from .harness.experiments import EXPERIMENTS
from .harness.runner import ExperimentConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bc",
        description="Regenerate tables/figures of McLaughlin & Bader, SC 2014",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate (or 'all')",
    )
    parser.add_argument("--scale-factor", type=int, default=64,
                        help="divide paper-scale dataset sizes by this (default 64)")
    parser.add_argument("--roots", type=int, default=24,
                        help="BC roots to execute per run (default 24)")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--scales", type=int, nargs="+", default=None,
                        help="scale sweep for figure5/figure6/table4")
    return parser


def _render(name: str, cfg: ExperimentConfig, scales) -> str:
    module = EXPERIMENTS[name]
    kwargs = {}
    if scales is not None and name in ("figure5", "figure6"):
        kwargs["scales"] = scales
    if scales is not None and name == "table4":
        kwargs["scale"] = scales[0]
    if name == "figure1":
        return module.render()
    return module.render(None, cfg, **kwargs) if kwargs else module.render(None, cfg)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    cfg = ExperimentConfig(scale_factor=args.scale_factor,
                           root_sample=args.roots, seed=args.seed)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_render(name, cfg, args.scales))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
