"""Command-line interface: ``python -m repro <experiment> [options]``.

Regenerates any of the paper's tables/figures as plain text, e.g.::

    python -m repro table3 --scale-factor 32 --roots 24
    python -m repro figure5 --scales 10 11 12 13 14
    python -m repro all

``--scale-factor`` divides the paper's dataset sizes (64 by default);
``--roots`` sets how many BC roots are executed per run before
extrapolation.

Beyond the paper's artifacts, ``resilience`` runs the fault-tolerant
distributed driver against an injected fault plan::

    python -m repro resilience --faults "fail:1@reduce;oom:0x2" \
        --ranks 4 --max-retries 3

``profile`` runs one instrumented device run and writes a kernel
profile (schema ``repro.profile/v1``: per root, per BFS level —
frontier sizes, strategy chosen, charged cycles) plus the metrics
registry export::

    python -m repro profile --graph kron_g500-logn20 --scale-factor 4096 \
        --strategy sampling --roots 16 --out profile.json

``verify`` injects silent bit-flips (the ``sdc`` fault kind) and shows
the ABFT verification layer detecting and repairing them::

    python -m repro verify --faults "sdc:0@delta;sdc:1@sigma+1" \
        --verify paranoid --ranks 4

``--verify off|sampled|paranoid`` also applies to ``resilience`` runs.

``profile --trace-out trace.json`` additionally writes the run's
decision trace (schema ``repro.trace/v1``) — every hybrid/sampling
strategy decision with the exact α/β/γ comparison that caused it —
from the *same* run that produced the kernel profile.  ``trace
explain`` replays such a file as a per-root decision audit::

    python -m repro profile --strategy hybrid --trace-out trace.json
    python -m repro trace explain trace.json

``bench`` is the performance-regression gate: ``bench run`` executes
the benchmark grid (every strategy × one dataset per structural class)
and writes a ``repro.bench/v1`` document; ``bench diff`` pairs it with
a baseline by (dataset, strategy) and classifies each pair under a
noise-aware tolerance, exiting nonzero on regression when asked::

    python -m repro bench run --out bench_current.json
    python -m repro bench diff bench_current.json \
        --against BENCH_baseline.json --fail-on-regression
    python -m repro bench report bench_diff.json

``service`` runs BC as a crash-safe daemon: graphs load once, jobs are
submitted through a spool directory, state lives in a checksummed
write-ahead journal that survives ``kill -9``, and results land in a
content-addressed verified cache::

    python -m repro service serve --root svc --idle-exit 5 &
    python -m repro service submit --root svc --graph smallworld \
        --strategy sampling --roots 8
    python -m repro service status --root svc
    python -m repro service results --root svc <job-id>

``status``/``results`` only *read* the journal and cache, so they work
with the daemon live, dead, or mid-crash.

Every command also accepts ``--metrics-out metrics.json`` to export the
run's metrics registry (``repro.observability/v1``).  Output paths get
their parent directories created on demand; unwritable paths fail with
a one-line error instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys

from .harness.experiments import EXPERIMENTS
from .harness.runner import ExperimentConfig

__all__ = ["main", "build_parser", "build_bench_parser",
           "build_trace_parser", "build_service_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bc",
        description="Regenerate tables/figures of McLaughlin & Bader, SC 2014",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "resilience", "profile",
                                       "verify"],
        help="which table/figure to regenerate ('all' for every paper "
             "artifact, 'resilience' for a fault-injected distributed run, "
             "'profile' for an instrumented device run exported as JSON, "
             "'verify' for a silent-corruption detection/repair demo)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics registry (counters/spans/histograms, "
             "schema repro.observability/v1) to this JSON file",
    )
    parser.add_argument("--scale-factor", type=int, default=64,
                        help="divide paper-scale dataset sizes by this (default 64)")
    parser.add_argument("--roots", type=int, default=24,
                        help="BC roots to execute per run (default 24)")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--scales", type=int, nargs="+", default=None,
                        help="scale sweep for figure5/figure6/table4")
    parser.add_argument(
        "--no-fold", action="store_true",
        help="disable the degree-1 folding preprocess (on by default) "
             "for profile/resilience/verify runs")
    faults = parser.add_argument_group("resilience options")
    faults.add_argument(
        "--faults", default=None,
        help="fault plan, e.g. 'fail:1@reduce;oom:0x2;straggler:2x3;"
             "sdc:0@delta+1#55' (defaults: kill rank 1 mid-compute for "
             "'resilience', bit-flip two ranks for 'verify')",
    )
    faults.add_argument("--ranks", type=int, default=4,
                        help="simulated ranks for the resilient run (default 4)")
    faults.add_argument("--max-retries", type=int, default=3,
                        help="recovery rounds before degrading (default 3)")
    faults.add_argument("--budget", type=float, default=None,
                        help="wall-clock budget in seconds (default: none)")
    faults.add_argument(
        "--verify", choices=["off", "sampled", "paranoid"], default=None,
        help="ABFT verification mode for resilience/verify runs "
             "(default: off for 'resilience', paranoid for 'verify')",
    )
    prof = parser.add_argument_group("profile options")
    prof.add_argument(
        "--graph", default="kron_g500-logn20",
        help="Table II dataset to profile (default kron_g500-logn20); "
             "sized by --scale-factor",
    )
    prof.add_argument(
        "--strategy", default="sampling",
        help="device strategy to profile (default sampling)",
    )
    prof.add_argument(
        "--out", default=None, metavar="PATH",
        help="where the profile (default profile.json) or verify report "
             "(default: not written) JSON goes; parent directories are "
             "created",
    )
    prof.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="also write the run's decision trace (schema repro.trace/v1) "
             "to this JSON file — kernel profile and decision audit from "
             "one run; replay with 'repro trace explain PATH'",
    )
    return parser


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bc bench",
        description="Run the benchmark grid and diff it against a baseline "
                    "(the performance-regression gate).",
    )
    sub = parser.add_subparsers(dest="bench_command", required=True)

    run_p = sub.add_parser("run", help="run the grid, write repro.bench/v1")
    run_p.add_argument("--out", default="bench_current.json", metavar="PATH")
    run_p.add_argument("--scale-factor", type=int, default=1024)
    run_p.add_argument("--roots", type=int, default=16)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--n-samps", type=int, default=None,
                       help="sampling-phase size for the sampling strategy "
                            "(default: half of --roots)")
    run_p.add_argument("--no-service", action="store_true",
                       help="omit the service load-generator rows "
                            "(dataset 'service-load')")
    run_p.add_argument("--no-fold", action="store_true",
                       help="run the grid without the degree-1 folding "
                            "preprocess (for before/after comparisons)")

    diff_p = sub.add_parser(
        "diff", help="pair two bench documents and classify every "
                     "(dataset, strategy) pair")
    diff_p.add_argument("current", help="repro.bench/v1 file to judge")
    diff_p.add_argument("--against", required=True, metavar="BASELINE",
                        help="repro.bench/v1 file to compare against "
                             "(e.g. BENCH_baseline.json)")
    diff_p.add_argument("--metric", default=None,
                        help="row metric to compare (default makespan_cycles)")
    diff_p.add_argument("--rel-tol", type=float, default=None,
                        help="relative change threshold (default 0.05)")
    diff_p.add_argument("--min-effect", type=float, default=None,
                        help="absolute-change floor below which a pair is "
                             "unchanged (default: per-metric)")
    diff_p.add_argument("--report", default=None, metavar="PATH",
                        help="also write the machine-readable "
                             "repro.bench.diff/v1 verdict here")
    diff_p.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 if any pair regressed")

    rep_p = sub.add_parser(
        "report", help="re-render a saved repro.bench.diff/v1 verdict")
    rep_p.add_argument("report", help="repro.bench.diff/v1 file")
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bc trace",
        description="Replay a repro.trace/v1 decision trace as a "
                    "human-readable audit, or reconstruct one service "
                    "job's lifecycle from the repro.events/v1 stream.",
    )
    sub = parser.add_subparsers(dest="trace_command", required=True)
    exp_p = sub.add_parser(
        "explain", help="per-root decision audit + frontier evolution")
    exp_p.add_argument("trace", help="repro.trace/v1 file (from "
                                     "'repro profile --trace-out')")
    exp_p.add_argument("--root", type=int, default=None,
                       help="audit only this root (default: all, "
                            "deduplicated by identical decision sequence)")
    tl_p = sub.add_parser(
        "timeline", help="span tree of one job's full lifecycle "
                         "(client -> admission -> attempts -> terminal) "
                         "from the service event stream")
    tl_p.add_argument("id", help="job id or trace id ('tr…')")
    tl_p.add_argument("--root", default=".repro-service", metavar="DIR",
                      help="service directory holding events.jsonl "
                           "(default .repro-service)")
    tl_p.add_argument("--events", default=None, metavar="PATH",
                      help="event stream file (overrides --root)")
    tl_p.add_argument("--out", default=None, metavar="PATH",
                      help="write the repro.timeline/v1 document here")
    tl_p.add_argument("--chrome-trace", default=None, metavar="PATH",
                      help="write this trace as a Chrome trace-event "
                           "file (chrome://tracing, Perfetto)")
    return parser


def build_service_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bc service",
        description="Crash-safe BC service: durable job queue, "
                    "fault-hardened scheduler, admission control.",
    )
    # --root lives on a parent parser so each verb accepts it after the
    # subcommand; allow_abbrev=False keeps it from swallowing --roots.
    common = argparse.ArgumentParser(add_help=False, allow_abbrev=False)
    common.add_argument("--root", default=".repro-service", metavar="DIR",
                        help="service directory (journal, result cache, "
                             "spool); default .repro-service")
    sub = parser.add_subparsers(dest="service_command", required=True)

    serve_p = sub.add_parser("serve", parents=[common],
                             help="run the daemon (foreground)")
    serve_p.add_argument("--max-queue", type=int, default=64)
    serve_p.add_argument("--degrade-threshold", type=int, default=None,
                         help="queue depth at which overload mode starts "
                              "(default: max-queue/2)")
    serve_p.add_argument("--tenant-quota", type=int, default=16)
    serve_p.add_argument("--max-retries", type=int, default=3)
    serve_p.add_argument("--devices", type=int, default=2,
                         help="simulated devices in the pool (default 2)")
    serve_p.add_argument("--seed", type=int, default=0,
                         help="scheduler seed (backoff jitter)")
    serve_p.add_argument("--throttle", type=float, default=0.0,
                         help="wall-clock sleep between jobs (the CI "
                              "kill-and-recover test widens its SIGKILL "
                              "window with this)")
    serve_p.add_argument("--idle-exit", type=float, default=None,
                         help="exit after this many idle seconds "
                              "(default: serve until SIGTERM)")
    serve_p.add_argument("--poll-interval", type=float, default=0.05)
    serve_p.add_argument("--metrics-out", default=None, metavar="PATH")

    sub_p = sub.add_parser("submit", parents=[common],
                           help="queue one job via the spool")
    sub_p.add_argument("--job-id", default=None,
                       help="explicit id (default: generated)")
    sub_p.add_argument("--graph", default="smallworld")
    sub_p.add_argument("--scale-factor", type=int, default=1024)
    sub_p.add_argument("--graph-seed", type=int, default=0)
    sub_p.add_argument("--strategy", default="sampling")
    sub_p.add_argument("--roots", type=int, default=8)
    sub_p.add_argument("--seed", type=int, default=0)
    sub_p.add_argument("--tenant", default="default")
    sub_p.add_argument("--deadline", type=float, default=None,
                       help="simulated-seconds deadline")
    sub_p.add_argument("--no-fold", action="store_true",
                       help="run this job without the degree-1 folding "
                            "preprocess (distinct cache key, equal values)")
    sub_p.add_argument("--no-degrade", action="store_true",
                       help="fail rather than return a flagged estimate")
    sub_p.add_argument("--faults", default="",
                       help="FaultPlan chaos spec, e.g. 'fail:0@compute+1'")

    stat_p = sub.add_parser("status", parents=[common],
                            help="read job state from the journal")
    stat_p.add_argument("job_id", nargs="?", default=None)

    cancel_p = sub.add_parser("cancel", parents=[common],
                              help="request a pending job's "
                                   "cancellation via the spool")
    cancel_p.add_argument("job_id")

    res_p = sub.add_parser("results", parents=[common],
                           help="read one DONE job's verified "
                                "result from the cache")
    res_p.add_argument("job_id")
    res_p.add_argument("--out", default=None, metavar="PATH",
                       help="write the full repro.result/v1 values here")

    jour_p = sub.add_parser("journal", parents=[common],
                            help="inspect the on-disk journal chain")
    jour_p.add_argument("journal_action", choices=["verify"],
                        help="'verify': per-record checksum scan of "
                             "every segment; classifies a torn active "
                             "tail (benign) vs interior rot (fatal)")
    jour_p.add_argument("path", nargs="?", default=None,
                        help="journal file or service root "
                             "(default: --root)")

    top_p = sub.add_parser("top", parents=[common],
                           help="offline SLO snapshot: per-tenant/"
                                "per-strategy latency percentiles, "
                                "phase decomposition, shed/degrade/"
                                "error-budget rates from the event "
                                "stream")
    top_p.add_argument("--out", default=None, metavar="PATH",
                       help="write the repro.slo/v1 report here")
    top_p.add_argument("--chrome-trace", default=None, metavar="PATH",
                       help="export the whole run as a Chrome "
                            "trace-event file (Perfetto-viewable)")

    soak_p = sub.add_parser("soak", parents=[common],
                            help="seeded chaos soak: kills, disk "
                                 "faults, retry storms; exits nonzero "
                                 "on any invariant violation")
    soak_p.add_argument("--seed", type=int, default=7)
    soak_p.add_argument("--rounds", type=int, default=4)
    soak_p.add_argument("--jobs", type=int, default=7,
                        help="submissions per round (default 7)")
    soak_p.add_argument("--clients", type=int, default=3,
                        help="concurrent retry-storm clients")
    soak_p.add_argument("--kill-every-round", action="store_true",
                        help="arm a SIGKILL-model crash in every round")
    soak_p.add_argument("--report-out", default=None, metavar="PATH",
                        help="write the full JSON soak report here")
    return parser


class _OutputError(Exception):
    """A report/metrics file could not be written; main() turns this
    into a one-line stderr message and a nonzero exit."""


class _InputError(Exception):
    """A required input file is missing/unreadable; rendered as a
    one-line actionable error with its own exit code (3), distinct from
    format errors (2)."""


def _write_report(path, payload_or_registry) -> None:
    from .observability import write_json

    try:
        write_json(path, payload_or_registry)
    except OSError as exc:
        raise _OutputError(
            f"error: cannot write {path}: {exc.strerror or exc}"
        ) from exc


def _render_profile(args, metrics) -> str:
    """Run one instrumented device run and write the kernel profile."""
    import numpy as np

    from .graph.generators import make_dataset
    from .gpusim import Device
    from .observability import registry_to_dict, run_profile

    out = args.out or "profile.json"
    g = make_dataset(args.graph, scale_factor=args.scale_factor,
                     seed=args.seed)
    rng = np.random.default_rng(args.seed)
    roots = np.sort(rng.choice(g.num_vertices,
                               size=min(args.roots, g.num_vertices),
                               replace=False))
    run = Device().run_bc(g, strategy=args.strategy, roots=roots,
                          metrics=metrics, fold=not args.no_fold)
    doc = run_profile(run, graph=g)
    reg = registry_to_dict(metrics)
    # One document: deterministic profile + metrics body; everything
    # wall-clock-dependent stays under the single "timing" key so two
    # seeded runs serialise byte-identically outside it.
    doc["metrics"] = {k: reg[k] for k in ("counters", "gauges", "histograms")}
    doc["timing"] = reg["timing"]
    _write_report(out, doc)
    lines = [
        f"profile          : {out}",
        f"graph            : {g.name or args.graph} "
        f"(n={g.num_vertices}, m={g.num_edges})",
        f"strategy         : {run.strategy} ({run.num_roots} roots)",
        f"makespan cycles  : {run.cycles:.0f} "
        f"({run.seconds * 1e3:.3f} simulated ms, {run.mteps():.1f} MTEPS)",
        f"levels traced    : "
        f"{sum(len(rt.levels) for rt in run.trace.roots)}",
    ]
    if args.trace_out:
        from .observability import trace_document

        _write_report(args.trace_out, trace_document(metrics, run=run, graph=g))
        lines.append(f"decision trace   : {args.trace_out} "
                     f"(replay with 'repro trace explain {args.trace_out}')")
    return "\n".join(lines)


def _load_bench_input(path, role: str):
    """Load a bench document, turning a missing/unreadable file into an
    actionable one-liner (exit 3) instead of a bare errno message."""
    from .bench import load_bench

    try:
        return load_bench(path)
    except OSError as exc:
        raise _InputError(
            f"error: cannot read {role} bench file {path!r}: "
            f"{exc.strerror or exc}. Generate it with "
            f"'repro bench run --out {path}' (the committed baseline "
            f"lives at BENCH_baseline.json)."
        ) from exc


def _bench_main(argv) -> int:
    from .bench import diff_bench, load_bench, run_bench_grid
    from .errors import BenchFormatError

    args = build_bench_parser().parse_args(argv)
    try:
        if args.bench_command == "run":
            doc, wall_per_run = run_bench_grid(
                scale_factor=args.scale_factor, roots=args.roots,
                seed=args.seed, n_samps=args.n_samps,
                include_service=not args.no_service,
                fold=not args.no_fold)
            doc["timing"] = {"per_run": wall_per_run,
                             "wall_seconds": sum(wall_per_run.values())}
            _write_report(args.out, doc)
            for row in doc["results"]:
                if "mteps" in row:
                    tail = f"{row['mteps']:>8.1f} MTEPS"
                else:  # service-load rows report latency, not traversal
                    tail = (f"p99 {row['p99_latency']:.2e}s "
                            f"shed {row['shed_rate']:.0%}")
                print(f"{row['dataset']:>20s} {row['strategy']:>15s} "
                      f"{row['makespan_cycles']:>14.0f} cycles {tail}")
            print(f"wrote {args.out}")
            return 0
        if args.bench_command == "diff":
            baseline = _load_bench_input(args.against, "baseline")
            current = _load_bench_input(args.current, "current")
            kwargs = {}
            if args.metric is not None:
                kwargs["metric"] = args.metric
            if args.rel_tol is not None:
                kwargs["rel_tol"] = args.rel_tol
            if args.min_effect is not None:
                kwargs["min_effect"] = args.min_effect
            diff = diff_bench(baseline, current, **kwargs)
            if args.report:
                _write_report(args.report, diff.to_dict())
            print(diff.render_table())
            if args.report:
                print(f"\nreport: {args.report}")
            return diff.exit_code if args.fail_on_regression else 0
        # bench report: re-render a saved verdict
        from .bench.regress import DIFF_SCHEMA, BenchDiff, Comparison
        from .observability import load_json

        try:
            saved = load_json(args.report)
        except OSError as exc:
            raise _InputError(
                f"error: cannot read diff report {args.report!r}: "
                f"{exc.strerror or exc}. Produce one with "
                f"'repro bench diff <current> --against "
                f"BENCH_baseline.json --report {args.report}'."
            ) from exc
        except ValueError as exc:
            raise BenchFormatError(str(exc)) from exc
        if not isinstance(saved, dict) or saved.get("schema") != DIFF_SCHEMA:
            raise BenchFormatError(
                f"{args.report}: expected schema {DIFF_SCHEMA!r}")
        diff = BenchDiff(
            metric=saved["metric"], rel_tol=saved["rel_tol"],
            min_effect=saved["min_effect"],
            higher_is_better=saved["higher_is_better"],
            rows=[Comparison(**row) for row in saved["rows"]],
            config_warnings=list(saved.get("config_warnings", [])),
        )
        print(diff.render_table())
        return 0
    except _InputError as exc:
        print(exc, file=sys.stderr)
        return 3
    except (BenchFormatError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except _OutputError as exc:
        print(exc, file=sys.stderr)
        return 2


def _spool_ticket(root: str, ticket: dict) -> str:
    """Atomically drop one ticket into the service spool; returns its
    path.  Atomic rename means the daemon never reads a half-written
    ticket."""
    import json
    import os
    import uuid

    spool = os.path.join(root, "spool")
    os.makedirs(spool, exist_ok=True)
    name = f"{uuid.uuid4().hex}.json"
    tmp = os.path.join(spool, f".{name}.tmp")
    path = os.path.join(spool, name)
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(ticket, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def _service_main(argv) -> int:
    import json
    import os

    from .errors import (
        JobSpecError,
        JournalCorruptionError,
    )
    from .service import (
        DONE,
        AdmissionPolicy,
        BCService,
        JobSpec,
        ResultCache,
        Scheduler,
        SimDevice,
        read_journal_chain,
        replay_state,
    )

    args = build_service_parser().parse_args(argv)
    root = args.root
    journal_path = os.path.join(root, "journal.jsonl")
    try:
        if args.service_command == "serve":
            from .observability import MetricsRegistry

            metrics = MetricsRegistry()
            policy = AdmissionPolicy(
                max_queue=args.max_queue,
                degrade_threshold=args.degrade_threshold,
                tenant_quota=args.tenant_quota)
            sched = Scheduler(
                [SimDevice(f"dev{i}") for i in range(max(1, args.devices))],
                max_retries=args.max_retries, seed=args.seed,
                metrics=metrics)
            svc = BCService(root, policy=policy, scheduler=sched,
                            metrics=metrics)
            if svc.recovered_ids:
                print(f"recovered {len(svc.recovered_ids)} interrupted "
                      f"job(s): {', '.join(svc.recovered_ids)}")
            print(f"serving from {root} "
                  f"(journal {journal_path}, pid {os.getpid()})")
            try:
                svc.serve_forever(poll_interval=args.poll_interval,
                                  throttle=args.throttle,
                                  idle_exit=args.idle_exit)
            finally:
                if args.metrics_out:
                    _write_report(args.metrics_out, metrics)
            print("drained; journal closed")
            return 0

        if args.service_command == "submit":
            spec = JobSpec(
                job_id=args.job_id or "", graph=args.graph,
                scale_factor=args.scale_factor, graph_seed=args.graph_seed,
                strategy=args.strategy, roots=args.roots, seed=args.seed,
                tenant=args.tenant, deadline_seconds=args.deadline,
                allow_degrade=not args.no_degrade,
                fold=not args.no_fold, faults=args.faults)
            if not spec.job_id:
                # Content-derived id: resubmitting the identical query
                # (lost ack, impatient retry) folds into the same job
                # instead of enqueuing it twice.
                from .client import derive_job_id

                spec = spec.with_id(derive_job_id(spec))
            _spool_ticket(root, {"op": "submit", "job": spec.to_dict()})
            print(spec.job_id)
            return 0

        if args.service_command == "cancel":
            _spool_ticket(root, {"op": "cancel", "job_id": args.job_id})
            print(f"cancel requested for {args.job_id}")
            return 0

        if args.service_command == "journal":
            from .service import verify_journal

            target = args.path or journal_path
            if os.path.isdir(target):
                target = os.path.join(target, "journal.jsonl")
            report = verify_journal(target)
            if (not report["files"]
                    or all(row["status"] == "missing"
                           for row in report["files"])):
                raise _InputError(
                    f"error: no journal at {target!r}. Start the daemon "
                    f"with 'repro service serve --root {root}'.")
            for row in report["files"]:
                extra = f" [{row['error']}]" if row.get("error") else ""
                seqs = ("-" if row["first_seq"] is None else
                        f"{row['first_seq']}..{row['last_seq']}")
                print(f"{row['role']:>8s} {os.path.basename(row['path']):>28s} "
                      f"{row['records']:>5d} rec  seq {seqs:>13s}  "
                      f"{row['bytes']:>7d} B  {row['status']}{extra}")
            for note in report["notes"]:
                print(f"note: {note}")
            print(f"{report['total_records']} record(s) across "
                  f"{len(report['files'])} file(s)")
            if report["problems"]:
                for problem in report["problems"]:
                    print(f"error: {problem}", file=sys.stderr)
                return 2
            print("journal chain verifies clean")
            return 0

        if args.service_command == "soak":
            from .observability import MetricsRegistry
            from .service import SoakConfig, run_soak

            cfg = SoakConfig(rounds=args.rounds,
                             jobs_per_round=args.jobs,
                             clients=args.clients,
                             kill_every_round=args.kill_every_round)
            report = run_soak(root, seed=args.seed, config=cfg,
                              metrics=MetricsRegistry(), log=print)
            print(f"soak seed={report['seed']}: "
                  f"{len(report['rounds'])} round(s), "
                  f"{report['kills']} kill(s), "
                  f"{report['faults_injected']} storage fault(s), "
                  f"{report['client_retries']} client retrie(s), "
                  f"{report['deduped']} deduped submit(s)")
            if args.report_out:
                _write_report(args.report_out, report)
            if report["violations"]:
                for v in report["violations"]:
                    print(f"VIOLATION (round {v['round']}): "
                          f"{v['invariant']}", file=sys.stderr)
                return 1
            print("all invariants held")
            return 0

        if args.service_command == "top":
            from .telemetry import (
                aggregate_slo,
                chrome_trace,
                read_events,
                render_top,
                write_chrome_trace,
            )

            events_path = os.path.join(root, "events.jsonl")
            if not os.path.exists(events_path):
                raise _InputError(
                    f"error: no event stream at {events_path!r}. The "
                    f"daemon writes it next to the journal; run some "
                    f"jobs first.")
            events, torn = read_events(events_path)
            report = aggregate_slo(events)
            print("\n".join(render_top(report)))
            if torn:
                print("note: torn tail dropped (crash mid-append; the "
                      "next daemon open reconciles it)")
            if args.out:
                _write_report(args.out, report)
            if args.chrome_trace:
                try:
                    write_chrome_trace(args.chrome_trace,
                                       chrome_trace(events))
                except OSError as exc:
                    raise _OutputError(
                        f"error: cannot write {args.chrome_trace}: "
                        f"{exc.strerror or exc}") from exc
                print(f"chrome trace: {args.chrome_trace}")
            return 0

        # status/results: read-only over the journal + cache — valid at
        # every instant, daemon or no daemon.
        if not os.path.exists(journal_path):
            raise _InputError(
                f"error: no journal at {journal_path!r}. Start the "
                f"daemon with 'repro service serve --root {root}'.")
        records, _torn = read_journal_chain(journal_path)
        state = replay_state(records, journal_path)

        if args.service_command == "status":
            if args.job_id is not None:
                job = state.jobs.get(args.job_id)
                if job is None:
                    print(f"error: no job {args.job_id!r} in the journal",
                          file=sys.stderr)
                    return 1
                print(json.dumps(job.status_dict(), indent=2,
                                 sort_keys=True))
                # Per-attempt timing from the event stream (when the
                # daemon has one): queued/backoff/compute per attempt,
                # which the journal alone cannot decompose.
                events_path = os.path.join(root, "events.jsonl")
                if os.path.exists(events_path):
                    from .telemetry import attempt_rows, read_events

                    events, _ = read_events(events_path)
                    rows = attempt_rows(events, args.job_id)
                    if rows:
                        print("attempts (from event stream):")
                    for r in rows:
                        tail = (f", backoff {r['backoff_after']:.6f}s"
                                if r["backoff_after"] is not None else "")
                        tail += (f", compute {r['compute']:.6f}s"
                                 if r["compute"] is not None else "")
                        print(f"  a{r['attempt']} on {r['device']}: "
                              f"queued {r['queue_wait']:.6f}s -> "
                              f"{r['outcome']}{tail}")
                return 0
            ordered = sorted(state.jobs.values(),
                             key=lambda j: j.submit_seq)
            for job in ordered:
                flag = ("exact" if job.exact
                        else (job.degraded_reason or "-")
                        if job.exact is not None else "-")
                print(f"{job.job_id:>14s} {job.state:>9s} "
                      f"{job.spec.tenant:>10s} {job.spec.graph:>18s} "
                      f"{job.spec.strategy:>15s} a{job.attempt} {flag}")
            print(f"{len(ordered)} job(s), "
                  f"{sum(1 for j in ordered if not j.terminal)} live")
            return 0

        # results
        job = state.jobs.get(args.job_id)
        if job is None:
            print(f"error: no job {args.job_id!r} in the journal",
                  file=sys.stderr)
            return 1
        if job.state != DONE or job.result_key is None:
            print(f"error: job {args.job_id!r} has no result "
                  f"(state={job.state}"
                  + (f", error={job.error}" if job.error else "") + ")",
                  file=sys.stderr)
            return 1
        cache = ResultCache(os.path.join(root, "results"))
        hit = cache.get(job.result_key)
        if hit is None:
            print(f"error: result {job.result_key[:12]}… missing or "
                  f"corrupt (evicted); a serving daemon re-materialises "
                  f"it on demand", file=sys.stderr)
            return 1
        values, meta = hit
        if args.out:
            _write_report(args.out, {
                "schema": "repro.result/v1", "key": job.result_key,
                "meta": meta, "values": [float(v) for v in values]})
        print(f"job       : {job.job_id}")
        print(f"exact     : {meta.get('exact')}"
              + (f" (degraded: {meta.get('degraded_reason')})"
                 if meta.get("degraded_reason") else ""))
        print(f"device    : {meta.get('device')} "
              f"(attempts {meta.get('attempts')}, "
              f"{float(meta.get('sim_seconds', 0.0)):.6f} sim s)")
        print(f"values    : n={values.size}, sum={float(values.sum()):.6f}, "
              f"max={float(values.max()):.6f}")
        if args.out:
            print(f"written   : {args.out}")
        return 0
    except _InputError as exc:
        print(exc, file=sys.stderr)
        return 3
    except JournalCorruptionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except JobSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except _OutputError as exc:
        print(exc, file=sys.stderr)
        return 2


def _trace_main(argv) -> int:
    args = build_trace_parser().parse_args(argv)
    if args.trace_command == "timeline":
        return _trace_timeline(args)

    from .errors import TraceFormatError
    from .observability import explain_lines, load_trace

    try:
        doc = load_trace(args.trace)
        print("\n".join(explain_lines(doc, root=args.root)))
        return 0
    except (TraceFormatError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _trace_timeline(args) -> int:
    import os

    from .telemetry import (
        build_timeline,
        chrome_trace,
        read_events,
        render_timeline,
        write_chrome_trace,
    )

    path = args.events or os.path.join(args.root, "events.jsonl")
    if not os.path.exists(path):
        print(f"error: no event stream at {path!r}. The service daemon "
              f"writes events.jsonl next to its journal.", file=sys.stderr)
        return 3
    events, _torn = read_events(path)
    # Trace ids are 'tr' + 16 hex chars; everything else is a job id.
    selector = ({"trace_id": args.id}
                if args.id.startswith("tr") and len(args.id) == 18
                else {"job_id": args.id})
    try:
        doc = build_timeline(events, **selector)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("\n".join(render_timeline(doc)))
    try:
        if args.out:
            _write_report(args.out, doc)
        if args.chrome_trace:
            if doc["trace_id"]:
                export = chrome_trace(events, trace_id=doc["trace_id"])
            else:
                export = chrome_trace(events, **selector)
            write_chrome_trace(args.chrome_trace, export)
            print(f"chrome trace: {args.chrome_trace}")
    except (_OutputError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 2
    return 0


def _render_resilience(args, metrics=None) -> str:
    """Run the fault-tolerant distributed driver on a small graph and
    report the recovery record next to the serial ground truth."""
    import numpy as np

    from .bc.api import betweenness_centrality
    from .graph.generators import watts_strogatz
    from .resilience import FaultPlan, resilient_distributed_bc

    n = max(16, 12288 // max(1, args.scale_factor))
    g = watts_strogatz(n, k=6, p=0.1, seed=args.seed)
    spec = args.faults if args.faults is not None else "fail:1@compute+1"
    plan = FaultPlan.parse(spec)
    run = resilient_distributed_bc(
        g, args.ranks, fault_plan=plan, max_retries=args.max_retries,
        wall_clock_budget=args.budget, seed=args.seed, metrics=metrics,
        verify=args.verify or "off", fold=not args.no_fold,
    )
    ref = betweenness_centrality(g)
    err = float(np.max(np.abs(run.values - ref)))
    lines = [
        "Resilient distributed BC (fault-injected Section V-D program)",
        f"graph            : {g.name or 'watts-strogatz'} "
        f"(n={g.num_vertices}, m={g.num_edges})",
        f"fault plan       : {spec}",
        run.summary(),
        f"max |err| vs serial: {err:.3e}"
        + ("" if run.exact else " (degraded roots are sampled estimates)"),
    ]
    return "\n".join(lines)


def _render_verify(args, metrics=None) -> str:
    """Inject silent bit-flips and report the verification layer's
    detect/quarantine/repair outcome against the serial ground truth."""
    import numpy as np

    from .bc.api import betweenness_centrality
    from .graph.generators import watts_strogatz
    from .resilience import FaultPlan, resilient_distributed_bc

    n = max(16, 12288 // max(1, args.scale_factor))
    g = watts_strogatz(n, k=6, p=0.1, seed=args.seed)
    spec = (args.faults if args.faults is not None
            else "sdc:0@delta;sdc:1@sigma+1")
    plan = FaultPlan.parse(spec)
    mode = args.verify or "paranoid"
    run = resilient_distributed_bc(
        g, args.ranks, fault_plan=plan, max_retries=args.max_retries,
        wall_clock_budget=args.budget, seed=args.seed, metrics=metrics,
        verify=mode, fold=not args.no_fold,
    )
    ref = betweenness_centrality(g)
    err = float(np.max(np.abs(run.values - ref)))
    if run.exact and np.allclose(run.values, ref):
        verdict = "corruption detected and repaired; values match serial BC"
    elif run.exact:
        verdict = "UNDETECTED CORRUPTION: values differ from serial BC"
    else:
        verdict = ("corruption surfaced; result degraded "
                   "(sampled estimate, not silently wrong)")
    if args.out:
        _write_report(args.out, {
            "schema": "repro.verify/v1",
            "graph": {"name": g.name or "watts-strogatz",
                      "num_vertices": g.num_vertices,
                      "num_edges": g.num_edges},
            "fault_plan": spec,
            "verification": run.verification,
            "exact": run.exact,
            "corruption_detected": run.corruption_detected,
            "roots_requarantined": run.roots_requarantined,
            "reduce_retries": run.reduce_retries,
            "corrupted_reduce": run.corrupted_reduce,
            "degraded_roots": run.degraded_roots,
            "max_abs_err_vs_serial": err,
        })
    lines = [
        "Silent-data-corruption verification (ABFT detect + self-heal)",
        f"graph            : {g.name or 'watts-strogatz'} "
        f"(n={g.num_vertices}, m={g.num_edges})",
        f"fault plan       : {spec}",
        run.summary(),
        f"max |err| vs serial: {err:.3e}",
        f"verdict          : {verdict}",
    ]
    if args.out:
        lines.append(f"report           : {args.out}")
    return "\n".join(lines)


def _render(name: str, cfg: ExperimentConfig, scales) -> str:
    module = EXPERIMENTS[name]
    kwargs = {}
    if scales is not None and name in ("figure5", "figure6"):
        kwargs["scales"] = scales
    if scales is not None and name == "table4":
        kwargs["scale"] = scales[0]
    if name == "figure1":
        return module.render()
    return module.render(None, cfg, **kwargs) if kwargs else module.render(None, cfg)


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # "bench" and "trace" are command groups with their own subparsers;
    # everything else flows through the legacy single-level parser.
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "service":
        return _service_main(argv[1:])
    args = build_parser().parse_args(argv)
    from .observability import MetricsRegistry

    metrics = MetricsRegistry()
    try:
        try:
            if args.experiment == "profile":
                print(_render_profile(args, metrics))
                print()
            elif args.experiment == "resilience":
                print(_render_resilience(args, metrics=metrics))
                print()
            elif args.experiment == "verify":
                print(_render_verify(args, metrics=metrics))
                print()
            else:
                cfg = ExperimentConfig(scale_factor=args.scale_factor,
                                       root_sample=args.roots, seed=args.seed)
                names = (sorted(EXPERIMENTS) if args.experiment == "all"
                         else [args.experiment])
                for name in names:
                    with metrics.span("experiment", name=name):
                        out = _render(name, cfg, args.scales)
                    metrics.inc("cli.experiments_rendered", name=name)
                    print(out)
                    print()
        finally:
            if args.metrics_out:
                _write_report(args.metrics_out, metrics)
    except _OutputError as exc:
        print(exc, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
