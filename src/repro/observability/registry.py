"""Metrics registry: counters, gauges, histograms, and timed spans.

One :class:`MetricsRegistry` collects everything a run wants to report:

* **Counters** — monotonically increasing totals (levels processed,
  bytes moved, incidents observed).
* **Gauges** — last-write-wins values (makespan cycles, pool size).
* **Histograms** — fixed-bucket distributions (frontier sizes, chunk
  latencies).  Buckets are upper bounds; an implicit ``+inf`` bucket
  catches the tail.
* **Spans** — nested timed intervals via the :meth:`MetricsRegistry.span`
  context manager, timestamped on a :class:`~repro.observability.clock.SpanClock`
  so wall and charged simulated time share one timeline.
* **Events** — an append-only structured log via :meth:`MetricsRegistry.record`:
  one dict per occurrence, in program order.  The decision-trace
  exporter (:mod:`repro.observability.trace`) reads this stream to
  reconstruct *why* each strategy decision was taken; events must carry
  only simulated/deterministic values so the ``repro.trace/v1``
  document stays byte-reproducible.

Every instrument accepts keyword **labels**; the same name with
different labels is a distinct series (``comm.bytes{op=bcast}`` vs
``comm.bytes{op=reduce}``).

Instrumented library code takes an optional registry defaulting to
:data:`NULL_REGISTRY`, a shared no-op whose methods do nothing — the
hot paths stay allocation-free and branch-free when observability is
off (guarded by the overhead test in
``tests/observability/test_overhead.py``).

Histograms observing *wall-clock-derived* values must be created with
``wall=True``: the exporter segregates them under the ``timing`` key so
that everything outside ``timing`` is bit-reproducible across runs (the
determinism the profile tests lock down).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field

from .clock import SpanClock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets: powers of four spanning frontier sizes,
#: byte counts and (milli)second latencies reasonably well.
DEFAULT_BUCKETS = tuple(float(4**k) for k in range(-4, 16))


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonic total; :meth:`inc` rejects negative increments."""

    name: str
    labels: dict
    value: float = 0.0

    def inc(self, value: float = 1.0) -> None:
        value = float(value)
        if not value >= 0.0:  # also rejects NaN
            raise ValueError(f"counter {self.name!r} cannot decrease by {value!r}")
        self.value += value


@dataclass
class Gauge:
    """Last-write-wins value."""

    name: str
    labels: dict
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` counts observations
    ``<= buckets[i]``; ``counts[-1]`` is the implicit ``+inf`` tail."""

    name: str
    labels: dict
    buckets: tuple
    wall: bool = False
    counts: list = field(default_factory=list)
    count: int = 0
    total: float = 0.0

    def __post_init__(self):
        bounds = tuple(float(b) for b in self.buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be non-empty and ascending")
        self.buckets = bounds
        if not self.counts:
            self.counts = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r} cannot observe NaN")
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value


@dataclass
class Span:
    """One timed interval; children are spans opened while it was open."""

    name: str
    labels: dict
    start: float
    end: float | None = None
    children: list = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start


class MetricsRegistry:
    """Collects counters, gauges, histograms and spans for one run."""

    enabled = True

    def __init__(self, clock: SpanClock | None = None):
        self.clock = clock if clock is not None else SpanClock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self.root_spans: list = []
        self._span_stack: list = []
        #: Structured event log, in program order (see :meth:`record`).
        self.events: list = []

    # -- instrument accessors ------------------------------------------
    def counter(self, name: str, /, **labels) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, dict(labels))
        return inst

    def gauge(self, name: str, /, **labels) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, dict(labels))
        return inst

    def histogram(self, name: str, /, buckets=DEFAULT_BUCKETS, wall: bool = False,
                  **labels) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(
                name, dict(labels), tuple(buckets), wall=bool(wall)
            )
        return inst

    # -- one-shot conveniences (what instrumented code calls) ----------
    def inc(self, name: str, value: float = 1.0, /, **labels) -> None:
        self.counter(name, **labels).inc(value)

    def set_gauge(self, name: str, value: float, /, **labels) -> None:
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, /, buckets=DEFAULT_BUCKETS,
                wall: bool = False, **labels) -> None:
        self.histogram(name, buckets=buckets, wall=wall, **labels).observe(value)

    def record(self, kind: str, /, **fields) -> None:
        """Append one structured event ``{"event": kind, **fields}``.

        ``kind`` is positional-only so ``event`` itself is a legal field
        name.  Field values must be JSON-serialisable and — for the
        trace-determinism guarantee — derived from simulated state only
        (no wall-clock readings)."""
        self.events.append({"event": kind, **fields})

    # -- spans ---------------------------------------------------------
    @contextmanager
    def span(self, name: str, /, **labels):
        """Open a timed span; spans opened inside nest as children."""
        s = Span(name=name, labels=dict(labels), start=self.clock.now())
        parent = self._span_stack[-1] if self._span_stack else None
        (parent.children if parent is not None else self.root_spans).append(s)
        self._span_stack.append(s)
        try:
            yield s
        finally:
            s.end = self.clock.now()
            self._span_stack.pop()

    # -- introspection -------------------------------------------------
    def counters(self) -> list:
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> list:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> list:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def export(self) -> dict:
        """Stable-schema dict; see :mod:`repro.observability.export`."""
        from .export import registry_to_dict

        return registry_to_dict(self)


class _NullSpan:
    """Reusable no-op context manager (also a valid, inert ``Span``)."""

    name = ""
    labels: dict = {}
    start = 0.0
    end = 0.0
    children: list = []
    duration = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullRegistry(MetricsRegistry):
    """No-op registry: every instrument call does nothing.

    Module-level :data:`NULL_REGISTRY` is the default ``metrics``
    argument of every instrumented function, making observability
    zero-cost when nobody asked to observe.
    """

    enabled = False

    def __init__(self):
        super().__init__(clock=SpanClock(wall=lambda: 0.0))

    def inc(self, name, value=1.0, /, **labels):
        pass

    def set_gauge(self, name, value, /, **labels):
        pass

    def observe(self, name, value, /, buckets=DEFAULT_BUCKETS, wall=False, **labels):
        pass

    def record(self, kind, /, **fields):
        pass

    def span(self, name, /, **labels):
        return _NULL_SPAN


#: Shared process-wide no-op registry.
NULL_REGISTRY = NullRegistry()
