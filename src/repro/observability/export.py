"""Stable-schema JSON and CSV exporters for a :class:`MetricsRegistry`.

Schema contract (``repro.observability/v1``):

* Top-level keys: ``schema``, ``counters``, ``gauges``, ``histograms``,
  ``timing``.
* Instrument lists are sorted by ``(name, labels)`` so two registries
  holding the same data serialise byte-identically.
* **Everything wall-clock-dependent lives under the single ``timing``
  key** — span timestamps, wall-marked histograms and the registry's
  wall/sim second totals.  Deleting ``timing`` from two exports of the
  same deterministic run must leave byte-identical JSON; the
  determinism tests rely on this.

:func:`dumps` is the single canonical serialiser every schema in the
repo goes through (``repro.observability/v1``, ``repro.profile/v1``,
``repro.trace/v1``, ``repro.bench/v1`` and its diff documents): object
keys sorted, fixed separators, trailing newline added by
:func:`write_json` — so "same simulated data" always means "same
bytes", which is what the byte-determinism tests compare.
"""

from __future__ import annotations

import csv
import json
import os

from .registry import MetricsRegistry, Span

__all__ = [
    "SCHEMA",
    "registry_to_dict",
    "span_to_dict",
    "dumps",
    "write_json",
    "load_json",
    "write_csv",
]

SCHEMA = "repro.observability/v1"


def span_to_dict(span: Span) -> dict:
    return {
        "name": span.name,
        "labels": dict(span.labels),
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "children": [span_to_dict(c) for c in span.children],
    }


def _instrument_dict(inst) -> dict:
    return {"name": inst.name, "labels": dict(inst.labels), "value": inst.value}


def _histogram_dict(h) -> dict:
    return {
        "name": h.name,
        "labels": dict(h.labels),
        "buckets": list(h.buckets),
        "counts": list(h.counts),
        "count": h.count,
        "sum": h.total,
    }


def registry_to_dict(registry: MetricsRegistry) -> dict:
    """Export ``registry`` with the ``repro.observability/v1`` schema."""
    sim_histograms = [h for h in registry.histograms() if not h.wall]
    wall_histograms = [h for h in registry.histograms() if h.wall]
    return {
        "schema": SCHEMA,
        "counters": [_instrument_dict(c) for c in registry.counters()],
        "gauges": [_instrument_dict(g) for g in registry.gauges()],
        "histograms": [_histogram_dict(h) for h in sim_histograms],
        "timing": {
            "wall_seconds": registry.clock.wall_seconds(),
            "sim_seconds": registry.clock.sim_seconds,
            "sim_components": registry.clock.components(),
            "spans": [span_to_dict(s) for s in registry.root_spans],
            "histograms": [_histogram_dict(h) for h in wall_histograms],
        },
    }


def dumps(payload: dict) -> str:
    """Canonical JSON serialisation (sorted keys, fixed separators) —
    the byte-stability the determinism tests compare."""
    return json.dumps(payload, sort_keys=True, indent=2, separators=(",", ": "))


def write_json(path, registry_or_dict) -> dict:
    """Write a registry (or an already-exported dict) as canonical JSON.

    Missing parent directories are created, so a report path like
    ``results/run1/metrics.json`` works on a fresh checkout."""
    payload = (registry_or_dict.export()
               if isinstance(registry_or_dict, MetricsRegistry)
               else registry_or_dict)
    parent = os.path.dirname(str(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps(payload) + "\n")
    return payload


def load_json(path) -> dict:
    """Load one JSON document; raises ``ValueError`` with the offending
    path on malformed input (schema validation is the caller's job —
    see :func:`repro.observability.trace.load_trace` and
    :func:`repro.bench.load_bench`)."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            return json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc


def _labels_str(labels: dict) -> str:
    return ";".join(f"{k}={v}" for k, v in sorted(labels.items()))


def write_csv(path, registry: MetricsRegistry) -> None:
    """Flatten scalar metrics to CSV rows ``kind,name,labels,field,value``.

    Histograms emit one ``bucket<=B`` row per bucket plus ``count`` and
    ``sum`` rows; spans are JSON-only (their nesting does not flatten).
    Row order matches the JSON export's sort order.
    """
    with open(path, "w", encoding="utf-8", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["kind", "name", "labels", "field", "value"])
        for c in registry.counters():
            w.writerow(["counter", c.name, _labels_str(c.labels), "value", c.value])
        for g in registry.gauges():
            w.writerow(["gauge", g.name, _labels_str(g.labels), "value", g.value])
        for h in registry.histograms():
            kind = "wall_histogram" if h.wall else "histogram"
            labels = _labels_str(h.labels)
            for bound, count in zip(list(h.buckets) + ["inf"], h.counts):
                w.writerow([kind, h.name, labels, f"bucket<={bound}", count])
            w.writerow([kind, h.name, labels, "count", h.count])
            w.writerow([kind, h.name, labels, "sum", h.total])
