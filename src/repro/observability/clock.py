"""Unified wall + simulated clock.

The repo mixes two notions of time: real wall-clock seconds (process
pools, CLI runs) and *charged* simulated seconds (device cycles,
interconnect transfers, recovery backoff).  Timing bugs creep in when
code adds the two ad hoc — the resilience driver used to charge its
``sim_clock`` differently in the budget check than in the final report.
:class:`SpanClock` is the single source of truth both paths read: wall
time flows from an injectable monotonic source, simulated time is
charged explicitly through :meth:`advance` under a named component, and
:meth:`elapsed` is *defined* as their sum, so a budget check and a
report that both call it can never disagree.
"""

from __future__ import annotations

import time

__all__ = ["SpanClock"]


class SpanClock:
    """Monotonic clock combining wall time with charged simulated time.

    Parameters
    ----------
    wall:
        Zero-argument callable returning monotonically non-decreasing
        wall seconds (default :func:`time.monotonic`).  Tests inject a
        manual counter to make span timings deterministic.
    """

    def __init__(self, wall=time.monotonic):
        self._wall = wall
        self._t0 = float(wall())
        self._sim = 0.0
        self._components: dict = {}

    # ------------------------------------------------------------------
    def advance(self, seconds: float, component: str = "sim") -> None:
        """Charge ``seconds`` of simulated time under ``component``."""
        seconds = float(seconds)
        if not seconds >= 0.0:  # also rejects NaN
            raise ValueError(f"cannot charge {seconds!r} simulated seconds")
        self._sim += seconds
        self._components[component] = self._components.get(component, 0.0) + seconds

    # ------------------------------------------------------------------
    def wall_seconds(self) -> float:
        """Real seconds since the clock was created."""
        return float(self._wall()) - self._t0

    @property
    def sim_seconds(self) -> float:
        """Total simulated seconds charged so far."""
        return self._sim

    def component_seconds(self, component: str) -> float:
        """Simulated seconds charged under one component name."""
        return self._components.get(component, 0.0)

    def components(self) -> dict:
        """Snapshot of every simulated component's charged seconds."""
        return dict(self._components)

    def elapsed(self) -> float:
        """Wall plus simulated seconds — the *only* elapsed-time value.

        Budget checks and reports must both use this so they can never
        drift apart.
        """
        return self.wall_seconds() + self._sim

    #: Alias used by span bookkeeping: a span's start/end timestamps are
    #: read from the same combined timeline.
    def now(self) -> float:
        return self.elapsed()
