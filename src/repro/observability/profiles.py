"""Kernel profiles: a :class:`DeviceRun`'s trace as an exportable dict.

A profile (schema ``repro.profile/v1``) is the on-disk form of what the
paper's figures are drawn from: per root, per BFS level — depth, stage,
strategy chosen, vertex-frontier size (Figure 3), edge-frontier size
(Table I) and charged cycles (Table I's elapsed times) — plus the run's
schedule outcome (makespan, per-SM busy cycles) and the memory ledger.

Everything in a profile is *simulated* and therefore deterministic for
a fixed graph/seed/strategy; wall-clock measurements belong in the
``timing`` key added by the CLI, never in the profile body.  The test
suite asserts byte-identical re-runs and exact agreement between the
exported level rows and the in-memory :class:`RunTrace`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # type-only: keeps this package dependency-free so the
    # instrumented modules (bc.engine, gpusim.device, ...) can import it
    # without a cycle.
    from ..gpusim.device import DeviceRun
    from ..gpusim.spec import GPUSpec
    from ..gpusim.trace import LevelTrace, RootTrace, RunTrace

__all__ = [
    "PROFILE_SCHEMA",
    "level_profile",
    "root_profile",
    "trace_profile",
    "spec_profile",
    "run_profile",
]

PROFILE_SCHEMA = "repro.profile/v1"


def level_profile(lv: LevelTrace) -> dict:
    return {
        "depth": int(lv.depth),
        "stage": lv.stage,
        "strategy": lv.strategy,
        "frontier": int(lv.frontier_size),
        "edge_frontier": int(lv.edge_frontier),
        "cycles": float(lv.cycles),
    }


def root_profile(rt: RootTrace) -> dict:
    return {
        "root": int(rt.root),
        "cycles": float(rt.cycles),
        "max_depth": int(rt.max_depth),
        "levels": [level_profile(lv) for lv in rt.levels],
    }


def trace_profile(trace: RunTrace) -> dict:
    return {
        "makespan_cycles": float(trace.makespan_cycles),
        "total_root_cycles": float(trace.total_root_cycles),
        "sm_cycles": (None if trace.sm_cycles is None
                      else [float(c) for c in trace.sm_cycles]),
        "kernels": [root_profile(rt) for rt in trace.roots],
    }


def spec_profile(spec: GPUSpec) -> dict:
    return {
        "name": spec.name,
        "num_sms": int(spec.num_sms),
        "clock_hz": float(spec.clock_hz),
        "memory_bytes": int(spec.memory_bytes),
        "concurrent_threads_per_sm": int(spec.concurrent_threads_per_sm),
        "compute_capability": spec.compute_capability,
    }


def run_profile(run: DeviceRun, graph=None) -> dict:
    """Full ``repro.profile/v1`` document for one device run.

    Parameters
    ----------
    graph:
        Optional :class:`~repro.graph.csr.CSRGraph`; adds a ``graph``
        section (name/size/direction) to the document.
    """
    doc = {
        "schema": PROFILE_SCHEMA,
        "device": spec_profile(run.spec),
        "run": {
            "strategy": run.strategy,
            "num_vertices": int(run.num_vertices),
            "num_edges": int(run.num_edges),
            "num_roots": int(run.num_roots),
            "roots": [int(r) for r in run.roots],
            "cycles": float(run.cycles),
            "sim_seconds": float(run.seconds),
            "mteps": float(run.mteps()),
            "fixed_cycles": float(run.fixed_cycles),
            "fixed_roots": int(run.fixed_roots),
            "sampling_chose_edge_parallel": run.sampling_chose_edge_parallel,
            "memory_bytes": {k: int(v) for k, v in
                             sorted(run.memory_report.items())},
        },
        "trace": trace_profile(run.trace),
    }
    if graph is not None:
        doc["graph"] = {
            "name": graph.name or "",
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
            "undirected": bool(graph.undirected),
        }
    return doc
