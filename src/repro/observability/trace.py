"""Decision traces: the ``repro.trace/v1`` audit log of a run.

A kernel profile (:mod:`repro.observability.profiles`) records *what*
happened — per level: frontier sizes, strategy, cycles.  A decision
trace records *why*: every strategy decision the adaptive policies took,
with the exact inputs and threshold comparison that produced it —
``|Δfrontier|`` against α and ``q_next`` against β for the hybrid method
(Algorithm 4), the sampled depth median against ``γ·log2(n)`` for the
sampling method (Algorithm 5), the per-iteration ``min_frontier`` guard
— plus the per-level frontier/edge-frontier timeline and any
communication or recovery events a distributed run emitted.

Both documents come from the same instrumented run ("one ``RunTrace``,
two exporters"): instrumented code appends structured events via
:meth:`MetricsRegistry.record` (a no-op on the null registry), and
:func:`trace_document` assembles them with the device run's level
timeline into one canonically-serialisable dict.  Everything in a trace
is simulated, so a fixed graph/seed/strategy serialises byte-identically
across runs — the same determinism contract the profile schema has.

:func:`explain_lines` replays a trace into the human-readable per-root
decision audit behind ``repro trace explain``, and
:func:`verify_decisions` cross-checks every recorded decision against
the strategies the levels actually executed under.
"""

from __future__ import annotations

import json

from ..errors import TraceFormatError
from .export import write_json
from .profiles import level_profile
from .registry import MetricsRegistry

__all__ = [
    "TRACE_SCHEMA",
    "trace_document",
    "write_trace",
    "load_trace",
    "decided_strategy_by_depth",
    "executed_strategy_by_depth",
    "verify_decisions",
    "frontier_evolution",
    "explain_lines",
]

TRACE_SCHEMA = "repro.trace/v1"

_DECISION = "decision."


def trace_document(metrics: MetricsRegistry | None = None, run=None,
                   graph=None) -> dict:
    """Assemble a ``repro.trace/v1`` document.

    Parameters
    ----------
    metrics:
        The registry the run was instrumented against; its recorded
        event stream supplies the ``decisions`` (every ``decision.*``
        event, in program order) and ``events`` (everything else —
        ``run.params``, ``comm.op``, ``resilience.*``) sections.
    run:
        Optional :class:`~repro.gpusim.device.DeviceRun`; adds the
        ``run`` summary and the flattened per-level ``levels`` timeline
        (one row per kernel iteration: root, depth, stage, strategy,
        vertex/edge frontier, cycles).
    graph:
        Optional :class:`~repro.graph.csr.CSRGraph`; adds a ``graph``
        section.
    """
    events = list(metrics.events) if metrics is not None else []
    doc = {
        "schema": TRACE_SCHEMA,
        "decisions": [e for e in events if e["event"].startswith(_DECISION)],
        "events": [e for e in events if not e["event"].startswith(_DECISION)],
        "levels": [],
    }
    if run is not None:
        doc["run"] = {
            "strategy": run.strategy,
            "num_vertices": int(run.num_vertices),
            "num_edges": int(run.num_edges),
            "num_roots": int(run.num_roots),
            "makespan_cycles": float(run.cycles),
            "sim_seconds": float(run.seconds),
            "fixed_roots": int(run.fixed_roots),
            "sampling_chose_edge_parallel": run.sampling_chose_edge_parallel,
        }
        doc["levels"] = [
            {"root": int(rt.root), **level_profile(lv)}
            for rt in run.trace.roots for lv in rt.levels
        ]
    if graph is not None:
        doc["graph"] = {
            "name": graph.name or "",
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
            "undirected": bool(graph.undirected),
        }
    return doc


def write_trace(path, doc_or_metrics, run=None, graph=None) -> dict:
    """Write a trace as canonical JSON (sorted keys, fixed separators —
    byte-identical for identical seeded runs); accepts either a
    finished document or a registry (plus optional run/graph)."""
    doc = (trace_document(doc_or_metrics, run=run, graph=graph)
           if isinstance(doc_or_metrics, MetricsRegistry)
           else doc_or_metrics)
    return write_json(path, doc)


def load_trace(path) -> dict:
    """Load and validate a ``repro.trace/v1`` document."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != TRACE_SCHEMA:
        raise TraceFormatError(
            f"{path}: expected schema {TRACE_SCHEMA!r}, "
            f"got {doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r}"
        )
    for key in ("decisions", "events", "levels"):
        if not isinstance(doc.get(key), list):
            raise TraceFormatError(f"{path}: missing or non-list {key!r} section")
    return doc


# ----------------------------------------------------------------------
# Audit: decisions vs. executed levels.

def decided_strategy_by_depth(doc: dict, root: int) -> dict:
    """``{depth: strategy}`` a root's recorded decisions *promise*:
    depth 0 from its ``decision.initial`` event, depth d from the
    ``decision.step`` event with ``applies_to_depth == d``."""
    out: dict = {}
    for ev in doc["decisions"]:
        if ev.get("root") != root:
            continue
        if ev["event"] in ("decision.initial", "decision.step"):
            out[int(ev["applies_to_depth"])] = ev["strategy"]
    return out


def executed_strategy_by_depth(doc: dict, root: int) -> dict:
    """``{depth: strategy}`` the root's forward levels actually ran
    under (the trace-side mirror of
    :meth:`repro.gpusim.trace.RootTrace.strategy_by_depth`)."""
    return {int(lv["depth"]): lv["strategy"] for lv in doc["levels"]
            if lv["root"] == root and lv["stage"] == "forward"}


def verify_decisions(doc: dict) -> list:
    """Cross-check the audit: every executed forward level's strategy
    must match the decision recorded for that depth.  Returns a list of
    human-readable mismatch strings — empty means the trace is
    consistent."""
    problems: list = []
    roots = sorted({lv["root"] for lv in doc["levels"]})
    for root in roots:
        decided = decided_strategy_by_depth(doc, root)
        executed = executed_strategy_by_depth(doc, root)
        for depth, strategy in sorted(executed.items()):
            want = decided.get(depth)
            if want is None:
                problems.append(
                    f"root {root} depth {depth}: level ran "
                    f"{strategy} but no decision was recorded"
                )
            elif want != strategy:
                problems.append(
                    f"root {root} depth {depth}: decision chose {want} "
                    f"but the level ran {strategy}"
                )
    return problems


# ----------------------------------------------------------------------
# Figure-1-style frontier evolution summary.

def frontier_evolution(doc: dict) -> list:
    """Per-depth aggregates over every root's forward sweep: how many
    levels ran at each depth, mean/max vertex and edge frontiers, and
    which strategies processed them — the trace-level analogue of the
    paper's Figure 1 frontier-shape discussion."""
    by_depth: dict = {}
    for lv in doc["levels"]:
        if lv["stage"] != "forward":
            continue
        row = by_depth.setdefault(int(lv["depth"]), {
            "depth": int(lv["depth"]), "levels": 0,
            "frontier_sum": 0, "frontier_max": 0,
            "edge_sum": 0, "edge_max": 0, "strategies": [],
        })
        row["levels"] += 1
        row["frontier_sum"] += int(lv["frontier"])
        row["frontier_max"] = max(row["frontier_max"], int(lv["frontier"]))
        row["edge_sum"] += int(lv["edge_frontier"])
        row["edge_max"] = max(row["edge_max"], int(lv["edge_frontier"]))
        if lv["strategy"] not in row["strategies"]:
            row["strategies"].append(lv["strategy"])
    out = []
    for depth in sorted(by_depth):
        row = by_depth[depth]
        row["frontier_mean"] = row["frontier_sum"] / row["levels"]
        row["edge_mean"] = row["edge_sum"] / row["levels"]
        out.append(row)
    return out


# ----------------------------------------------------------------------
# Human-readable replay (``repro trace explain``).

def _root_audit_signature(doc: dict, root: int) -> tuple:
    """Hashable fingerprint of one root's decision sequence, used to
    group roots that took identical decisions."""
    sig = []
    for ev in doc["decisions"]:
        if ev.get("root") != root:
            continue
        sig.append((ev["event"], int(ev.get("applies_to_depth", -1)),
                    ev["strategy"], ev["rule"]))
    return tuple(sig)


def _format_roots(roots: list) -> str:
    if len(roots) == 1:
        return f"root {roots[0]}"
    if len(roots) <= 8:
        return "roots " + ", ".join(str(r) for r in roots)
    head = ", ".join(str(r) for r in roots[:8])
    return f"roots {head} (+{len(roots) - 8} more)"


def explain_lines(doc: dict, root: int | None = None) -> list:
    """Replay a trace into a per-root decision audit.

    Groups roots whose decision sequences are identical (on most graphs
    the bulk of roots switch at the same depths), prints every
    switch/keep with the recorded rule — the exact α/β/γ comparison —
    then the sampling classification (if any), a Figure-1-style
    frontier-evolution table, and the consistency verdict of
    :func:`verify_decisions`.
    """
    lines: list = []
    run = doc.get("run", {})
    graph = doc.get("graph", {})
    if run or graph:
        name = graph.get("name") or "?"
        lines.append(
            f"trace: strategy={run.get('strategy', '?')} graph={name} "
            f"(n={run.get('num_vertices', graph.get('num_vertices', '?'))}, "
            f"m={run.get('num_edges', graph.get('num_edges', '?'))}) "
            f"roots={run.get('num_roots', '?')}"
        )

    # Graph-level sampling classification (Algorithm 5), if taken.
    for ev in doc["decisions"]:
        if ev["event"] != "decision.sampling":
            continue
        lines.append("")
        lines.append(
            f"sampling classification over {ev['n_samps']} sampled "
            f"root(s): {ev['rule']}"
        )
        depths = ev.get("depths") or []
        if depths:
            lines.append(
                f"  sampled BFS depths: min={min(depths)} "
                f"median={ev.get('median_depth')} max={max(depths)}"
            )
        guard = ev.get("min_frontier")
        if ev.get("chose_edge_parallel") and guard is not None:
            lines.append(
                f"  remaining roots run edge-parallel, guarded per "
                f"iteration by frontier >= {guard}"
            )

    # Per-root decision audits, deduplicated by decision signature.
    roots = sorted({ev["root"] for ev in doc["decisions"]
                    if "root" in ev})
    if root is not None:
        roots = [r for r in roots if r == root]
    groups: dict = {}
    for r in roots:
        groups.setdefault(_root_audit_signature(doc, r), []).append(r)
    for sig, members in groups.items():
        lines.append("")
        lines.append(f"{_format_roots(members)}:")
        rep = members[0]
        for ev in doc["decisions"]:
            if ev.get("root") != rep:
                continue
            if ev["event"] == "decision.initial":
                lines.append(
                    f"  depth 0 [{ev['policy']}] {ev['strategy']} — "
                    f"{ev['rule']}"
                )
            elif ev["event"] == "decision.step":
                switched = ev["strategy"] != ev.get("previous")
                marker = " ** switch **" if switched else ""
                lines.append(
                    f"  depth {ev['applies_to_depth']} [{ev['policy']}] "
                    f"{ev['strategy']} — {ev['rule']}{marker}"
                )

    evolution = frontier_evolution(doc)
    if evolution:
        lines.append("")
        lines.append("frontier evolution (forward sweep, all roots):")
        lines.append(
            f"  {'depth':>5} {'levels':>6} {'frontier mean':>13} "
            f"{'max':>8} {'edges mean':>11} {'max':>9}  strategies"
        )
        for row in evolution:
            lines.append(
                f"  {row['depth']:>5} {row['levels']:>6} "
                f"{row['frontier_mean']:>13.1f} {row['frontier_max']:>8} "
                f"{row['edge_mean']:>11.1f} {row['edge_max']:>9}  "
                + ",".join(row["strategies"])
            )

    comm = [e for e in doc["events"] if e["event"] == "comm.op"]
    if comm:
        lines.append("")
        lines.append(
            f"communication: {len(comm)} collective(s), "
            f"{sum(e['nbytes'] for e in comm)} bytes, "
            f"{sum(e['seconds'] for e in comm):.6f} simulated s"
        )
    incidents = [e for e in doc["events"]
                 if e["event"] == "resilience.incident"]
    for ev in incidents:
        lines.append(
            f"incident: rank {ev['rank']} {ev['kind']} at {ev['where']!r} "
            f"(attempt {ev['attempt']}, {ev['roots_lost']} roots orphaned)"
        )

    if doc["levels"]:
        problems = verify_decisions(doc)
        lines.append("")
        if problems:
            lines.append(f"AUDIT FAILED: {len(problems)} decision/level "
                         f"mismatch(es):")
            lines.extend(f"  {p}" for p in problems)
        else:
            lines.append("audit: every executed level matches its "
                         "recorded decision")
    return lines
