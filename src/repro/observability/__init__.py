"""Observability layer: metrics registry, span tracing, kernel profiles.

The measurement substrate every performance claim in this repo is
checked against.  Three pieces:

* :class:`MetricsRegistry` / :data:`NULL_REGISTRY` — counters, gauges,
  fixed-bucket histograms and nested timed spans.  Instrumented
  functions (``bc.engine``, ``gpusim.Device``, ``parallel.pool``,
  ``cluster.SimComm``, ``resilience.driver``) take ``metrics=`` and
  default to the shared no-op registry, so observation is opt-in and
  zero-cost when off.
* :class:`SpanClock` — one timeline for wall and charged simulated
  seconds; budget checks and reports read the same ``elapsed()``.
* Exporters — canonical JSON/CSV (``repro.observability/v1``), device
  kernel profiles (``repro.profile/v1``, via ``repro profile``) and
  decision traces (``repro.trace/v1``, via ``repro profile
  --trace-out`` / ``repro trace explain``): every strategy decision
  with the exact α/β/γ comparison that caused it, recorded through
  :meth:`MetricsRegistry.record` and replayable as a per-root audit.

Quickstart::

    from repro.observability import MetricsRegistry
    from repro.gpusim import Device

    metrics = MetricsRegistry()
    run = Device().run_bc(g, strategy="sampling", metrics=metrics)
    metrics.export()          # stable-schema dict
"""

from .clock import SpanClock
from .export import (
    SCHEMA,
    dumps,
    load_json,
    registry_to_dict,
    span_to_dict,
    write_csv,
    write_json,
)
from .profiles import (
    PROFILE_SCHEMA,
    level_profile,
    root_profile,
    run_profile,
    spec_profile,
    trace_profile,
)
from .registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Span,
)
from .trace import (
    TRACE_SCHEMA,
    explain_lines,
    frontier_evolution,
    load_trace,
    trace_document,
    verify_decisions,
    write_trace,
)

__all__ = [
    "SpanClock",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "DEFAULT_BUCKETS",
    "SCHEMA",
    "PROFILE_SCHEMA",
    "TRACE_SCHEMA",
    "registry_to_dict",
    "span_to_dict",
    "dumps",
    "write_json",
    "load_json",
    "write_csv",
    "trace_document",
    "write_trace",
    "load_trace",
    "explain_lines",
    "frontier_evolution",
    "verify_decisions",
    "level_profile",
    "root_profile",
    "trace_profile",
    "spec_profile",
    "run_profile",
]
