"""Road-network stand-in for ``luxembourg.osm``.

Road networks are nearly planar, have average degree barely above 2
(long chains of degree-2 vertices between junctions), tiny max degree
and *enormous* diameter (1336 for luxembourg.osm at only 114k
vertices).  We reproduce that shape with a two-step construction:

1. a random spanning tree of a sqrt(n) x sqrt(n) grid (random-weight
   Kruskal), which yields m = n - 1 and a very large diameter;
2. a small fraction of extra grid edges re-inserted to create the loops
   real road networks have (bringing m/n to ~1.05, matching
   luxembourg.osm's 119,666 / 114,599).
"""

from __future__ import annotations

import math

import numpy as np

from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["road_network", "luxembourg_like"]


class _DisjointSet:
    """Array-based union-find with path halving (used by Kruskal)."""

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True


def _grid_edges(w: int, h: int) -> np.ndarray:
    """All horizontal+vertical edges of a ``w x h`` grid (ids row-major)."""
    ids = np.arange(w * h, dtype=np.int64).reshape(h, w)
    horiz = np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    vert = np.column_stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    return np.concatenate([horiz, vert], axis=0)


def road_network(
    n: int, extra_edge_fraction: float = 0.05, seed: int = 0, name: str = ""
) -> CSRGraph:
    """Generate a road-network-like graph with about ``n`` vertices.

    ``extra_edge_fraction`` controls the loop density: 0 gives a tree,
    luxembourg.osm corresponds to roughly 0.05 extra edges per vertex.
    """
    if n <= 1:
        return CSRGraph(np.zeros(max(n, 0) + 1 if n > 0 else 1, dtype=np.int64),
                        np.empty(0, dtype=np.int64), name=name or "road_empty")
    if not 0.0 <= extra_edge_fraction <= 1.0:
        raise ValueError("extra_edge_fraction must be in [0, 1]")
    w = max(2, int(math.sqrt(n)))
    h = max(2, (n + w - 1) // w)
    total = w * h
    rng = np.random.default_rng(seed)
    grid = _grid_edges(w, h)
    order = rng.permutation(grid.shape[0])
    dsu = _DisjointSet(total)
    tree_rows = []
    spare_rows = []
    for idx in order:
        u, v = int(grid[idx, 0]), int(grid[idx, 1])
        if dsu.union(u, v):
            tree_rows.append(idx)
        else:
            spare_rows.append(idx)
    keep = list(tree_rows)
    extra = int(extra_edge_fraction * total)
    keep.extend(spare_rows[:extra])
    edges = grid[np.asarray(keep, dtype=np.int64)]
    g = from_edges(edges, num_vertices=total, undirected=True,
                   name=name or f"road_{total}")
    return g


def luxembourg_like(n: int = 114_599, seed: int = 0) -> CSRGraph:
    """Instance with luxembourg.osm's shape (m/n ~ 1.04, huge diameter)."""
    return road_network(n, extra_edge_fraction=0.045, seed=seed,
                        name="luxembourg.osm")
