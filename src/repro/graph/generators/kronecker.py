"""R-MAT / stochastic Kronecker generator (stand-in for ``kron_g500-lognXX``).

The Graph500 reference generator draws edges by recursively descending a
2x2 probability matrix (a, b; c, d) for ``scale`` levels.  With the
Graph500 parameters (a=0.57, b=0.19, c=0.19, d=0.05) the result is a
scale-free graph with tiny diameter, a power-law degree distribution with
extreme hubs, and — characteristically — a large number of isolated
vertices, which the paper calls out both for the Jia et al. reader
limitation and for the inflated TEPS discussion of Table IV.

The sampling loop below is fully vectorised: one RNG draw per (edge,
level) decides the quadrant for all edges at once.
"""

from __future__ import annotations

import numpy as np

from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["rmat_edges", "kronecker_graph", "kron_g500"]

GRAPH500_PROBS = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    num_edges: int,
    probs: tuple = GRAPH500_PROBS,
    seed: int = 0,
    noise: float = 0.05,
) -> np.ndarray:
    """Sample ``num_edges`` R-MAT edge pairs over ``2**scale`` vertices.

    ``noise`` perturbs the quadrant probabilities per level (the Graph500
    "smoothing" that avoids exact self-similarity artifacts).
    """
    a, b, c, d = probs
    total = a + b + c + d
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"R-MAT probabilities must sum to 1, got {total}")
    rng = np.random.default_rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(int(scale)):
        # Perturb probabilities slightly per level, renormalise.
        p = np.array([a, b, c, d]) * (1.0 + noise * (rng.random(4) - 0.5))
        p /= p.sum()
        u = rng.random(num_edges)
        # Quadrant thresholds: [0,a) -> (0,0); [a,a+c) -> (1,0);
        # [a+c, a+c+b) -> (0,1); [a+c+b, 1) -> (1,1).
        right = u >= p[0] + p[2]
        down = ((u >= p[0]) & (u < p[0] + p[2])) | (u >= p[0] + p[2] + p[1])
        src = (src << 1) | down.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    return np.column_stack([src, dst])


def kronecker_graph(
    scale: int,
    edge_factor: int = 16,
    probs: tuple = GRAPH500_PROBS,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Graph500-style Kronecker graph: ``2**scale`` vertices and
    ``edge_factor * 2**scale`` sampled (pre-dedup) undirected edges."""
    n = 1 << int(scale)
    num_edges = int(edge_factor) * n
    edges = rmat_edges(scale, num_edges, probs=probs, seed=seed)
    return from_edges(edges, num_vertices=n, undirected=True,
                      name=name or f"kron_g500-logn{scale}")


def kron_g500(scale: int, seed: int = 0, edge_factor: int = 16) -> CSRGraph:
    """Named instance matching the paper's ``kron_g500-logn<scale>``."""
    return kronecker_graph(scale, edge_factor=edge_factor, seed=seed)
