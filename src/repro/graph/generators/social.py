"""Social-network stand-ins: geosocial (loc-gowalla) and co-purchase
(com-amazon) graphs.

* ``loc-gowalla`` is a geosocial friendship network: heavy-tailed
  degrees (max 29,460 at n=196k) with small diameter.  We use a
  Chung-Lu draw from a power-law expected-degree sequence whose tail is
  calibrated to produce comparable hubs.
* ``com-amazon`` is a product co-purchasing network: modest max degree
  (549), strong community structure, diameter in the tens.  We build a
  planted-community graph: power-law community sizes, dense random
  intra-community edges, sparse inter-community edges along a
  preferential backbone.
"""

from __future__ import annotations

import numpy as np

from ..build import from_edges
from ..csr import CSRGraph
from .scalefree import chung_lu, powerlaw_degree_sequence

__all__ = ["geosocial_graph", "gowalla_like", "community_graph", "amazon_like"]


def geosocial_graph(
    n: int,
    exponent: float = 2.2,
    min_degree: int = 2,
    hub_fraction_of_n: float = 0.1,
    locality: float = 0.0,
    locality_window: float = 0.02,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Power-law graph with hubs up to ``hub_fraction_of_n * n``.

    ``locality`` is the fraction of edge endpoints rewired to land near
    their partner on a ring of vertex ids (within ``locality_window * n``)
    — friendships in geosocial networks are mostly geographic, which is
    why loc-gowalla's diameter (15) is far above the pure-configuration-
    model value.  ``locality=0`` is a plain Chung-Lu draw.
    """
    if n <= 1:
        return CSRGraph(np.zeros(max(n, 0) + 1 if n > 0 else 1, dtype=np.int64),
                        np.empty(0, dtype=np.int64), name=name or "geosocial_empty")
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be in [0, 1]")
    max_degree = max(min_degree + 1, int(hub_fraction_of_n * n))
    w = powerlaw_degree_sequence(
        n, exponent=exponent, min_degree=min_degree,
        max_degree=max_degree, seed=seed,
    )
    if locality == 0.0:
        return chung_lu(w, seed=seed + 1, name=name or f"geosocial_{n}")
    rng = np.random.default_rng(seed + 1)
    total = w.sum()
    num_pairs = int(total // 2)
    p = w / total
    src = rng.choice(n, size=num_pairs, p=p)
    dst = rng.choice(n, size=num_pairs, p=p)
    # Rewire a fraction of endpoints to be geographically local: a
    # signed offset within the window, wrapped on the id ring.
    window = max(2, int(locality_window * n))
    local = rng.random(num_pairs) < locality
    offsets = rng.integers(1, window + 1, size=num_pairs)
    signs = rng.choice((-1, 1), size=num_pairs)
    dst = np.where(local, (src + signs * offsets) % n, dst)
    edges = np.column_stack([src, dst]).astype(np.int64)
    return from_edges(edges, num_vertices=n, undirected=True,
                      name=name or f"geosocial_{n}")


def gowalla_like(n: int = 196_591, seed: int = 0) -> CSRGraph:
    """Instance with loc-gowalla's shape (m/n ~ 9.7, extreme hubs)."""
    # Average degree target ~19 directed (9.7 undirected edges per vertex).
    return geosocial_graph(n, exponent=2.25, min_degree=4,
                           hub_fraction_of_n=0.08, locality=0.6,
                           locality_window=0.01, seed=seed,
                           name="loc-gowalla")


def community_graph(
    n: int,
    mean_community: int = 40,
    intra_degree: float = 4.0,
    inter_degree: float = 1.5,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Planted-community graph (communities of geometric-ish sizes,
    Erdős–Rényi-style intra edges, random inter edges)."""
    if n <= 1:
        return CSRGraph(np.zeros(max(n, 0) + 1 if n > 0 else 1, dtype=np.int64),
                        np.empty(0, dtype=np.int64), name=name or "community_empty")
    rng = np.random.default_rng(seed)
    # Community sizes: geometric with the requested mean, truncated >= 2.
    sizes = []
    remaining = n
    while remaining > 0:
        s = int(min(remaining, max(2, rng.geometric(1.0 / mean_community))))
        sizes.append(s)
        remaining -= s
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    src_parts, dst_parts = [], []
    # Intra-community edges: each member draws ~intra_degree partners
    # inside its community.
    for ci in range(len(sizes)):
        lo, hi = int(bounds[ci]), int(bounds[ci + 1])
        s = hi - lo
        if s < 2:
            continue
        cnt = int(intra_degree * s / 2) + 1
        a = rng.integers(lo, hi, size=cnt)
        b = rng.integers(lo, hi, size=cnt)
        src_parts.append(a)
        dst_parts.append(b)
        # A Hamiltonian-ish path keeps each community connected.
        src_parts.append(np.arange(lo, hi - 1, dtype=np.int64))
        dst_parts.append(np.arange(lo + 1, hi, dtype=np.int64))
    # Inter-community edges: uniform endpoint pairs (sparse glue).
    cnt = int(inter_degree * len(sizes))
    if cnt:
        src_parts.append(rng.integers(0, n, size=cnt))
        dst_parts.append(rng.integers(0, n, size=cnt))
    # Backbone path over community representatives keeps the graph connected
    # and gives it the moderate diameter co-purchase networks show.
    reps = bounds[:-1].astype(np.int64)
    if reps.size > 1:
        perm = rng.permutation(reps.size)
        reps = reps[perm]
        src_parts.append(reps[:-1])
        dst_parts.append(reps[1:])
    edges = np.column_stack([np.concatenate(src_parts), np.concatenate(dst_parts)])
    return from_edges(edges, num_vertices=n, undirected=True,
                      name=name or f"community_{n}")


def amazon_like(n: int = 334_863, seed: int = 0) -> CSRGraph:
    """Instance with com-amazon's shape (m/n ~ 2.8, communities)."""
    return community_graph(n, mean_community=30, intra_degree=4.0,
                           inter_degree=2.0, seed=seed, name="com-amazon")
