"""Copying-model web graph (stand-in for the ``cnr-2000`` web crawl).

Web graphs combine a power-law degree distribution with strong local
clustering.  The linear-time *copying model* (Kumar et al.) captures
both: each new page picks a random "prototype" page and copies each of
the prototype's links with probability ``1 - beta``, otherwise links to
a uniformly random page.  With out-degree ~8 and beta ~0.3 the result
matches cnr-2000's shape (n=325k, m=2.7M, max degree in the ten
thousands, diameter in the low tens).
"""

from __future__ import annotations

import numpy as np

from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["copying_web_graph", "cnr_like"]


def copying_web_graph(
    n: int,
    out_degree: int = 8,
    beta: float = 0.3,
    locality: float = 0.1,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Generate a copying-model web graph with ``n`` pages.

    ``locality`` restricts prototypes and random targets to a sliding
    window of the last ``locality * n`` pages: crawls visit sites
    contiguously, so most links stay within a neighbourhood of the
    crawl order.  This is what gives real web crawls like cnr-2000
    their surprisingly large diameter (33 at n = 325k) despite their
    power-law hubs — the hubs are site-local, not global.

    The graph is returned undirected (symmetrised), matching how the
    paper's BC computation treats the web crawl.
    """
    if out_degree < 1:
        raise ValueError("out_degree must be >= 1")
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    if not 0.0 < locality <= 1.0:
        raise ValueError("locality must be in (0, 1]")
    if n <= 1:
        return CSRGraph(np.zeros(max(n, 0) + 1 if n > 0 else 1, dtype=np.int64),
                        np.empty(0, dtype=np.int64), name=name or "web_empty")
    rng = np.random.default_rng(seed)
    k = out_degree
    window = max(k + 1, int(locality * n))
    seed_n = min(n, k + 1)
    # Dense seed so prototypes always have links to copy.
    idx = np.arange(seed_n)
    src_parts = [np.repeat(idx, seed_n - 1)]
    dst_parts = [np.concatenate([np.delete(idx, i) for i in range(seed_n)])]
    # Link table: links[v] holds vertex v's chosen targets.
    links = np.zeros((n, k), dtype=np.int64)
    links[:seed_n] = np.array(
        [np.resize(np.delete(idx, i), k) for i in range(seed_n)], dtype=np.int64
    )
    # Pre-draw all randomness in bulk; the per-page loop only assembles.
    protos_u = rng.random(n)
    copy_masks = rng.random((n, k)) >= beta
    random_u = rng.random((n, k))
    for v in range(seed_n, n):
        lo = max(0, v - window)
        proto = lo + int(protos_u[v] * (v - lo))
        row = np.where(copy_masks[v], links[proto],
                       lo + (random_u[v] * (v - lo)).astype(np.int64))
        row[row == v] = proto
        links[v] = row
        src_parts.append(np.full(k, v, dtype=np.int64))
        dst_parts.append(row.copy())
    edges = np.column_stack([np.concatenate(src_parts), np.concatenate(dst_parts)])
    return from_edges(edges, num_vertices=n, undirected=True,
                      name=name or f"web_{n}")


def cnr_like(n: int = 325_527, seed: int = 0) -> CSRGraph:
    """Instance with cnr-2000's shape (power law + clustering + the
    crawl-order locality that gives it diameter ~33)."""
    return copying_web_graph(n, out_degree=8, beta=0.3, locality=0.03,
                             seed=seed, name="cnr-2000")
