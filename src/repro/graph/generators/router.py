"""Router-level Internet topology stand-in for ``caidaRouterLevel``.

Router-level topologies are scale-free but with a much flatter tail
than AS-level graphs (caidaRouterLevel: n=192k, m=609k, max degree
1,071, diameter 25).  Preferential attachment with a small attachment
count reproduces that: heavy tail bounded well below the hub sizes of
social networks, small diameter, average degree ~6.
"""

from __future__ import annotations

import numpy as np

from ..csr import CSRGraph
from .scalefree import barabasi_albert

__all__ = ["router_topology", "caida_like"]


def router_topology(n: int, attach: int = 3, seed: int = 0, name: str = "") -> CSRGraph:
    """Preferential-attachment router topology with ``attach`` links per
    new router."""
    g = barabasi_albert(n, m=attach, seed=seed)
    return g.with_name(name or f"router_{n}")


def caida_like(n: int = 192_244, seed: int = 0) -> CSRGraph:
    """Instance with caidaRouterLevel's shape (m/n ~ 3.2)."""
    return router_topology(n, attach=3, seed=seed, name="caidaRouterLevel")
