"""Random geometric graphs (stand-in for DIMACS ``rgg_n_2_k``).

``rgg_n_2_k`` places ``2**k`` points uniformly in the unit square and
connects pairs within Euclidean distance ``r``.  The DIMACS instances
choose ``r`` so the graph is almost surely connected; the resulting
average degree of ``rgg_n_2_20`` is about 13 and its diameter is in the
hundreds — the canonical "high diameter, uniform degree" class on which
the paper's work-efficient method shines (Figures 3a, 5a).
"""

from __future__ import annotations

import math

import numpy as np

from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["random_geometric_graph", "rgg_n_2"]


def random_geometric_graph(
    n: int,
    radius: float | None = None,
    avg_degree: float = 13.0,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Generate a random geometric graph on ``n`` points in the unit square.

    Parameters
    ----------
    radius:
        Connection radius.  Defaults to the radius giving the requested
        expected ``avg_degree`` (``sqrt(avg_degree / (pi * n))``).
    """
    if n <= 0:
        return CSRGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64),
                        name=name or "rgg_empty")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    if radius is None:
        radius = math.sqrt(max(avg_degree, 1e-9) / (math.pi * n))
    from scipy.spatial import cKDTree

    tree = cKDTree(pts)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    return from_edges(pairs, num_vertices=n, undirected=True,
                      name=name or f"rgg_n_{n}")


def rgg_n_2(scale: int, seed: int = 0, avg_degree: float = 13.0) -> CSRGraph:
    """DIMACS-style instance ``rgg_n_2_<scale>`` with ``2**scale`` vertices."""
    n = 1 << int(scale)
    return random_geometric_graph(
        n, avg_degree=avg_degree, seed=seed, name=f"rgg_n_2_{scale}"
    )
