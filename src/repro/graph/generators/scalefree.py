"""Scale-free generators: preferential attachment and Chung-Lu.

Barabási-Albert preferential attachment produces the power-law degree
distributions (few massive hubs, many low-degree vertices) that drive
the load-imbalance analysis of Section III-A; Chung-Lu draws a graph
with a *prescribed* expected degree sequence and is used for the
power-law stand-ins where we want to control the exponent directly.
"""

from __future__ import annotations

import numpy as np

from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["barabasi_albert", "chung_lu", "powerlaw_degree_sequence"]


def barabasi_albert(n: int, m: int = 3, seed: int = 0, name: str = "") -> CSRGraph:
    """Barabási-Albert preferential attachment.

    Each new vertex attaches to ``m`` existing vertices chosen with
    probability proportional to their current degree, implemented with
    the standard repeated-endpoints trick (sampling uniformly from the
    flat list of all edge endpoints is degree-proportional sampling).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if n <= m:
        # Complete graph on the few vertices we have.
        idx = np.arange(max(n, 0))
        pairs = np.array([(u, v) for u in idx for v in idx if u < v], dtype=np.int64)
        return from_edges(pairs.reshape(-1, 2), num_vertices=max(n, 0),
                          name=name or f"ba_{n}_{m}")
    rng = np.random.default_rng(seed)
    # Endpoint pool; each undirected edge contributes both endpoints.
    targets = np.empty(2 * m * (n - m), dtype=np.int64)
    pool_len = 0
    src_list = np.empty(m * (n - m), dtype=np.int64)
    dst_list = np.empty(m * (n - m), dtype=np.int64)
    e = 0
    # Seed star over the first m+1 vertices so every early vertex has degree.
    for v in range(m):
        src_list[e] = m
        dst_list[e] = v
        targets[pool_len] = m
        targets[pool_len + 1] = v
        pool_len += 2
        e += 1
    for v in range(m + 1, n):
        picks = targets[rng.integers(0, pool_len, size=m)]
        picks = np.unique(picks)
        for t in picks:
            src_list[e] = v
            dst_list[e] = t
            targets[pool_len] = v
            targets[pool_len + 1] = t
            pool_len += 2
            e += 1
    edges = np.column_stack([src_list[:e], dst_list[:e]])
    return from_edges(edges, num_vertices=n, undirected=True,
                      name=name or f"ba_{n}_{m}")


def powerlaw_degree_sequence(
    n: int, exponent: float = 2.4, min_degree: int = 2,
    max_degree: int | None = None, seed: int = 0,
) -> np.ndarray:
    """Draw an integer power-law degree sequence with exponent ``exponent``."""
    if exponent <= 1.0:
        raise ValueError("power-law exponent must exceed 1")
    rng = np.random.default_rng(seed)
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(n) * 3))
    u = rng.random(n)
    a = 1.0 - exponent
    lo, hi = float(min_degree), float(max_degree)
    # Inverse-CDF sampling of a truncated Pareto distribution.
    deg = (lo ** a + u * (hi ** a - lo ** a)) ** (1.0 / a)
    return np.maximum(min_degree, deg.astype(np.int64))


def chung_lu(
    weights: np.ndarray, seed: int = 0, name: str = ""
) -> CSRGraph:
    """Chung-Lu random graph with expected degrees ``weights``.

    Implemented with the O(m) "edge-skipping"-free approximation: draw
    ``sum(w)/2`` endpoint pairs with probability proportional to weight.
    This preserves the expected degree sequence up to multi-edge
    collisions (removed by dedup), which is the standard fast sampler.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    n = w.size
    total = w.sum()
    if total <= 0:
        return from_edges(np.empty((0, 2), np.int64), num_vertices=n,
                          name=name or f"chung_lu_{n}")
    rng = np.random.default_rng(seed)
    num_pairs = int(total // 2)
    p = w / total
    src = rng.choice(n, size=num_pairs, p=p)
    dst = rng.choice(n, size=num_pairs, p=p)
    edges = np.column_stack([src, dst]).astype(np.int64)
    return from_edges(edges, num_vertices=n, undirected=True,
                      name=name or f"chung_lu_{n}")
