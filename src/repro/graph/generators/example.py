"""The paper's running example graph (Figures 1 and 2).

The figure itself is not machine-readable, so the edge set below is
reconstructed from every property the text states:

* vertex 4's neighbours are exactly {1, 3, 5, 6} (the second BFS
  iteration from vertex 4 has frontier {1, 3, 5, 6});
* vertex 4 is the unique cut vertex between {1, 2, 3} and {5..9}, so it
  lies on all shortest paths between the two sides (highest BC);
* vertex 9 lies on no shortest path between any other pair (BC = 0);
* vertex 8 lies on *a* path from 5 to 9, but the *shortest* 5-9 path
  goes through 7 instead, and 8's BC is 0.

Vertices are 0-indexed here; the paper labels them 1..9, so paper
vertex ``k`` is index ``k - 1``.
"""

from __future__ import annotations

import numpy as np

from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["figure1_graph", "FIGURE1_EDGES"]

#: Undirected edges of the Figure 1 example, using the paper's 1-based labels.
FIGURE1_EDGES = [
    (1, 2), (2, 3),          # the right-hand triangle path 1-2-3
    (1, 4), (3, 4),          # both right-side anchors of the cut vertex
    (4, 5), (4, 6), (5, 6),  # the left-side wedge
    (5, 7),                  # corridor toward the tail
    (7, 8), (7, 9), (8, 9),  # the 7-8-9 triangle (8 and 9 score zero)
]


def figure1_graph() -> CSRGraph:
    """Return the 9-vertex example graph of Figure 1 (0-indexed)."""
    edges = np.asarray(FIGURE1_EDGES, dtype=np.int64) - 1
    return from_edges(edges, num_vertices=9, undirected=True, name="figure1")
