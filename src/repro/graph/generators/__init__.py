"""Synthetic graph generators mirroring the paper's Table II datasets."""

from .delaunay import delaunay_graph, delaunay_n
from .example import FIGURE1_EDGES, figure1_graph
from .kronecker import GRAPH500_PROBS, kron_g500, kronecker_graph, rmat_edges
from .mesh import af_shell_like, stencil_mesh
from .rgg import random_geometric_graph, rgg_n_2
from .road import luxembourg_like, road_network
from .router import caida_like, router_topology
from .scalefree import barabasi_albert, chung_lu, powerlaw_degree_sequence
from .smallworld import smallworld, watts_strogatz
from .social import amazon_like, community_graph, geosocial_graph, gowalla_like
from .suite import DATASET_CLASSES, DATASETS, DatasetSpec, make_dataset, suite
from .webgraph import cnr_like, copying_web_graph

__all__ = [
    "FIGURE1_EDGES",
    "figure1_graph",
    "delaunay_graph",
    "delaunay_n",
    "GRAPH500_PROBS",
    "kron_g500",
    "kronecker_graph",
    "rmat_edges",
    "af_shell_like",
    "stencil_mesh",
    "random_geometric_graph",
    "rgg_n_2",
    "luxembourg_like",
    "road_network",
    "caida_like",
    "router_topology",
    "barabasi_albert",
    "chung_lu",
    "powerlaw_degree_sequence",
    "smallworld",
    "watts_strogatz",
    "amazon_like",
    "community_graph",
    "geosocial_graph",
    "gowalla_like",
    "cnr_like",
    "copying_web_graph",
    "DATASET_CLASSES",
    "DATASETS",
    "DatasetSpec",
    "make_dataset",
    "suite",
]
