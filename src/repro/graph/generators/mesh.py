"""Finite-element-style mesh stand-in for ``af_shell9``.

``af_shell9`` (sheet-metal-forming FEM, UFL collection) is a
quasi-regular mesh: 505k vertices, 8.5M edges (average degree ~34, max
39) and diameter 497.  We model it as a 2-D grid where every vertex
connects to all neighbours within Chebyshev radius ``r`` — radius 3
gives 48 neighbours in the interior (close to af_shell9's 33.8 average
once boundary effects are included at these aspect ratios, and capped
uniformly like a FEM stencil).  The key structural properties the BC
algorithms care about — near-uniform degree, gradual linear frontier
growth, large diameter — match by construction.
"""

from __future__ import annotations

import math

import numpy as np

from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["stencil_mesh", "af_shell_like"]


def stencil_mesh(
    n: int, radius: int = 2, aspect: float = 1.0, seed: int = 0, name: str = ""
) -> CSRGraph:
    """A ``w x h`` grid with edges to every vertex within Chebyshev
    distance ``radius`` (a (2r+1)^2 - 1 point FEM-like stencil).

    ``aspect`` stretches the grid (w/h ratio); af_shell-style shells are
    long and thin, which raises the diameter for a given vertex count.
    """
    if radius < 1:
        raise ValueError("stencil radius must be >= 1")
    if n <= 1:
        return CSRGraph(np.zeros(max(n, 0) + 1 if n > 0 else 1, dtype=np.int64),
                        np.empty(0, dtype=np.int64), name=name or "mesh_empty")
    aspect = max(aspect, 1e-3)
    w = max(2, int(math.sqrt(n * aspect)))
    h = max(2, (n + w - 1) // w)
    ids = np.arange(w * h, dtype=np.int64).reshape(h, w)
    src_parts, dst_parts = [], []
    for dy in range(0, radius + 1):
        for dx in range(-radius, radius + 1):
            if dy == 0 and dx <= 0:
                continue  # keep one direction of each offset pair
            ys = slice(0, h - dy)
            yd = slice(dy, h)
            if dx >= 0:
                xs = slice(0, w - dx)
                xd = slice(dx, w)
            else:
                xs = slice(-dx, w)
                xd = slice(0, w + dx)
            src_parts.append(ids[ys, xs].ravel())
            dst_parts.append(ids[yd, xd].ravel())
    edges = np.column_stack([np.concatenate(src_parts), np.concatenate(dst_parts)])
    return from_edges(edges, num_vertices=w * h, undirected=True,
                      name=name or f"mesh_{w}x{h}_r{radius}")


def af_shell_like(n: int = 504_855, seed: int = 0) -> CSRGraph:
    """Instance with af_shell9's shape: wide stencil, elongated grid."""
    return stencil_mesh(n, radius=3, aspect=32.0, seed=seed, name="af_shell9")
