"""Delaunay triangulations of random points (stand-in for ``delaunay_nXX``).

The DIMACS ``delaunay_n20`` graph is the Delaunay triangulation of
2^20 random points: planar, average degree just under 6, diameter in
the hundreds — the "mesh" class of Figure 3b / Figure 5b.
"""

from __future__ import annotations

import numpy as np

from ..build import from_edges
from ..csr import CSRGraph

__all__ = ["delaunay_graph", "delaunay_n"]


def delaunay_graph(n: int, seed: int = 0, name: str = "") -> CSRGraph:
    """Delaunay triangulation of ``n`` uniform random points in the unit
    square, as an undirected graph on the points."""
    if n <= 0:
        return CSRGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64),
                        name=name or "delaunay_empty")
    if n < 3:
        # Too few points to triangulate: chain them.
        edges = np.column_stack([np.arange(n - 1), np.arange(1, n)])
        return from_edges(edges, num_vertices=n, undirected=True,
                          name=name or f"delaunay_{n}")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    from scipy.spatial import Delaunay

    tri = Delaunay(pts)
    s = tri.simplices
    edges = np.concatenate([s[:, [0, 1]], s[:, [1, 2]], s[:, [0, 2]]], axis=0)
    return from_edges(edges, num_vertices=n, undirected=True,
                      name=name or f"delaunay_{n}")


def delaunay_n(scale: int, seed: int = 0) -> CSRGraph:
    """DIMACS-style instance ``delaunay_n<scale>`` with ``2**scale`` points."""
    n = 1 << int(scale)
    return delaunay_graph(n, seed=seed, name=f"delaunay_n{scale}")
