"""Watts-Strogatz small-world graphs (stand-in for ``smallworld``).

The paper's ``smallworld`` instance has 100k vertices, ~500k edges
(ring lattice degree k = 10), max degree 17 and diameter 9 — i.e. the
classic Watts-Strogatz construction with a rewiring probability around
0.1.  Small-world graphs have near-uniform degree but logarithmic
diameter, so their frontiers balloon after a few iterations (Figure 3e)
and the edge-parallel method becomes competitive.
"""

from __future__ import annotations

import numpy as np

from ..build import dedupe_edges, from_edges, symmetrize_edges
from ..csr import CSRGraph

__all__ = ["watts_strogatz", "smallworld"]


def watts_strogatz(
    n: int, k: int = 10, p: float = 0.1, seed: int = 0, name: str = ""
) -> CSRGraph:
    """Watts-Strogatz ring lattice with random rewiring.

    Parameters
    ----------
    k:
        Each vertex connects to its ``k`` nearest ring neighbours
        (``k`` must be even; ``k // 2`` on each side).
    p:
        Probability of rewiring each lattice edge's far endpoint to a
        uniformly random vertex.
    """
    if k % 2 != 0:
        raise ValueError("k must be even for a symmetric ring lattice")
    if not 0.0 <= p <= 1.0:
        raise ValueError("rewiring probability must be in [0, 1]")
    if n <= 0:
        return CSRGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64),
                        name=name or "smallworld_empty")
    if k >= n:
        k = max(0, (n - 1) // 2 * 2)
    rng = np.random.default_rng(seed)
    base = np.arange(n, dtype=np.int64)
    src_parts = []
    dst_parts = []
    for off in range(1, k // 2 + 1):
        src_parts.append(base)
        dst_parts.append((base + off) % n)
    if not src_parts:
        return from_edges(np.empty((0, 2), np.int64), num_vertices=n,
                          name=name or f"smallworld_{n}")
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    rewire = rng.random(src.size) < p
    dst = dst.copy()
    dst[rewire] = rng.integers(0, n, size=int(rewire.sum()))
    edges = np.column_stack([src, dst])
    edges = edges[edges[:, 0] != edges[:, 1]]
    return from_edges(edges, num_vertices=n, undirected=True,
                      name=name or f"smallworld_{n}")


def smallworld(n: int = 100_000, seed: int = 0) -> CSRGraph:
    """The paper's ``smallworld`` instance shape (k=10, p=0.1)."""
    return watts_strogatz(n, k=10, p=0.1, seed=seed, name="smallworld")
