"""The Table II benchmark suite, re-creatable at any scale.

Each entry names one of the paper's ten datasets and knows how to build
a structurally equivalent synthetic instance.  ``scale_factor`` shrinks
the instance (vertex count divided by the factor) so the full harness
can run in laptop-sized Python; ``scale_factor=1`` reproduces the
paper-sized instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..csr import CSRGraph
from .delaunay import delaunay_graph
from .kronecker import kronecker_graph
from .mesh import stencil_mesh
from .rgg import random_geometric_graph
from .road import road_network
from .smallworld import watts_strogatz
from .social import community_graph, geosocial_graph
from .router import router_topology
from .webgraph import copying_web_graph

__all__ = ["DatasetSpec", "DATASETS", "make_dataset", "suite", "DATASET_CLASSES"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table II row: name, paper-scale size, structural class, builder."""

    name: str
    paper_vertices: int
    paper_edges: int
    graph_class: str  # mesh | road | scale-free | small-world | web | social
    description: str
    builder: Callable[[int, int], CSRGraph]  # (num_vertices, seed) -> graph


def _af_shell(n: int, seed: int) -> CSRGraph:
    return stencil_mesh(n, radius=3, aspect=32.0, seed=seed, name="af_shell9")


def _caida(n: int, seed: int) -> CSRGraph:
    return router_topology(n, attach=3, seed=seed, name="caidaRouterLevel")


def _cnr(n: int, seed: int) -> CSRGraph:
    return copying_web_graph(n, out_degree=8, beta=0.3, locality=0.03,
                             seed=seed, name="cnr-2000")


def _amazon(n: int, seed: int) -> CSRGraph:
    return community_graph(n, mean_community=30, intra_degree=4.0,
                           inter_degree=2.0, seed=seed, name="com-amazon")


def _delaunay(n: int, seed: int) -> CSRGraph:
    return delaunay_graph(n, seed=seed, name="delaunay_n20")


def _kron(n: int, seed: int) -> CSRGraph:
    scale = max(1, (n - 1).bit_length())
    return kronecker_graph(scale, edge_factor=16, seed=seed,
                           name="kron_g500-logn20")


def _gowalla(n: int, seed: int) -> CSRGraph:
    return geosocial_graph(n, exponent=2.25, min_degree=4,
                           hub_fraction_of_n=0.08, locality=0.6,
                           locality_window=0.01, seed=seed, name="loc-gowalla")


def _luxembourg(n: int, seed: int) -> CSRGraph:
    return road_network(n, extra_edge_fraction=0.045, seed=seed,
                        name="luxembourg.osm")


def _rgg(n: int, seed: int) -> CSRGraph:
    return random_geometric_graph(n, avg_degree=13.0, seed=seed,
                                  name="rgg_n_2_20")


def _smallworld(n: int, seed: int) -> CSRGraph:
    return watts_strogatz(n, k=10, p=0.1, seed=seed, name="smallworld")


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("af_shell9", 504_855, 8_542_010, "mesh",
                    "Sheet metal forming", _af_shell),
        DatasetSpec("caidaRouterLevel", 192_244, 609_066, "scale-free",
                    "Internet router-level topology", _caida),
        DatasetSpec("cnr-2000", 325_527, 2_738_969, "web",
                    "Web crawl", _cnr),
        DatasetSpec("com-amazon", 334_863, 925_872, "social",
                    "Amazon product co-purchasing", _amazon),
        DatasetSpec("delaunay_n20", 1_048_576, 3_145_686, "mesh",
                    "Random triangulation", _delaunay),
        DatasetSpec("kron_g500-logn20", 1_048_576, 44_619_402, "scale-free",
                    "Kronecker", _kron),
        DatasetSpec("loc-gowalla", 196_591, 1_900_654, "scale-free",
                    "Geosocial", _gowalla),
        DatasetSpec("luxembourg.osm", 114_599, 119_666, "road",
                    "Road map", _luxembourg),
        DatasetSpec("rgg_n_2_20", 1_048_576, 6_891_620, "mesh",
                    "Random geometric", _rgg),
        DatasetSpec("smallworld", 100_000, 499_998, "small-world",
                    "Small world phenomenon", _smallworld),
    ]
}

#: Structural classes the hybrid analysis groups graphs into (Figure 3).
DATASET_CLASSES = {
    "high-diameter": ["af_shell9", "delaunay_n20", "luxembourg.osm", "rgg_n_2_20"],
    "low-diameter": ["caidaRouterLevel", "cnr-2000", "com-amazon",
                     "kron_g500-logn20", "loc-gowalla", "smallworld"],
}


def make_dataset(name: str, scale_factor: int = 64, seed: int = 0) -> CSRGraph:
    """Build the named Table II dataset at ``paper_vertices / scale_factor``."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    if scale_factor < 1:
        raise ValueError("scale_factor must be >= 1")
    spec = DATASETS[name]
    n = max(16, spec.paper_vertices // scale_factor)
    return spec.builder(n, seed)


def suite(scale_factor: int = 64, seed: int = 0, names=None):
    """Yield ``(spec, graph)`` for each Table II dataset (optionally a
    subset given by ``names``), at the requested scale."""
    for name in (names or DATASETS):
        spec = DATASETS[name]
        yield spec, make_dataset(name, scale_factor=scale_factor, seed=seed)
