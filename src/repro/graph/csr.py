"""Compressed Sparse Row graph container.

The paper (like essentially all GPU graph work) stores graphs in CSR
format: an ``indptr`` offsets array of length ``n + 1`` and a
concatenated adjacency array ``adj`` of length equal to the number of
*directed* edges.  Undirected graphs are stored symmetrised, i.e. each
undirected edge {u, v} appears twice (u->v and v->u), exactly as the
reference CUDA implementation does.

:class:`CSRGraph` is immutable after construction; all algorithms in
this package treat it as read-only shared state, which is what makes
the coarse-grained parallelism over BFS roots safe.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import GraphStructureError

__all__ = ["CSRGraph"]


@dataclass(frozen=True)
class CSRGraph:
    """An immutable CSR graph.

    Attributes
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; neighbours of
        vertex ``v`` are ``adj[indptr[v]:indptr[v + 1]]``.
    adj:
        ``int64`` array of neighbour ids (directed edge targets).
    undirected:
        If True the graph is a symmetrised undirected graph and
        :attr:`num_edges` reports the number of *undirected* edges
        (``len(adj) // 2``), matching the paper's ``m`` in the TEPS
        formula (Eq. 4).  If False, :attr:`num_edges` is ``len(adj)``.
    name:
        Optional human-readable label (used by experiment tables).
    """

    indptr: np.ndarray
    adj: np.ndarray
    undirected: bool = True
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        adj = np.ascontiguousarray(self.adj, dtype=np.int64)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "adj", adj)
        if indptr.ndim != 1 or adj.ndim != 1:
            raise GraphStructureError("indptr and adj must be 1-D arrays")
        if indptr.size < 1:
            raise GraphStructureError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise GraphStructureError("indptr[0] must be 0")
        if indptr[-1] != adj.size:
            raise GraphStructureError(
                f"indptr[-1] ({int(indptr[-1])}) must equal len(adj) ({adj.size})"
            )
        if indptr.size > 1 and np.any(np.diff(indptr) < 0):
            raise GraphStructureError("indptr must be non-decreasing")
        n = indptr.size - 1
        if adj.size and (adj.min() < 0 or adj.max() >= n):
            raise GraphStructureError("adjacency targets out of range")
        if self.undirected and adj.size % 2 != 0:
            raise GraphStructureError(
                "undirected graph must have an even number of directed edges"
            )
        indptr.setflags(write=False)
        adj.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of edges ``m`` (undirected edges when :attr:`undirected`)."""
        return self.adj.size // 2 if self.undirected else self.adj.size

    @property
    def num_directed_edges(self) -> int:
        """Length of the adjacency array (always the directed count)."""
        return self.adj.size

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree of each vertex (read-only view arithmetic, O(n))."""
        return np.diff(self.indptr)

    @property
    def max_degree(self) -> int:
        """Maximum out-degree (0 for an edgeless graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self.degrees.max(initial=0))

    def digest(self) -> str:
        """SHA-256 content digest of the graph structure.

        Covers ``indptr``, ``adj`` and directedness — two graphs share a
        digest iff they are structurally identical.  The service layer
        keys its graph registry, circuit breaker and content-addressed
        result cache on this, so it is computed once and cached (the
        arrays are frozen read-only at construction).
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            h = hashlib.sha256()
            h.update(b"repro.csr/v1")
            h.update(b"u" if self.undirected else b"d")
            h.update(self.indptr.tobytes())
            h.update(self.adj.tobytes())
            cached = h.hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    def neighbors(self, v: int) -> np.ndarray:
        """Read-only adjacency slice of vertex ``v``."""
        v = int(v)
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.num_vertices})")
        return self.adj[self.indptr[v] : self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Out-degree of vertex ``v``."""
        v = int(v)
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range [0, {self.num_vertices})")
        return int(self.indptr[v + 1] - self.indptr[v])

    # ------------------------------------------------------------------
    # Derived arrays used by the edge-parallel kernels
    # ------------------------------------------------------------------
    def edge_sources(self) -> np.ndarray:
        """Source vertex of every directed edge, aligned with :attr:`adj`.

        This is exactly the auxiliary array an edge-parallel CUDA kernel
        precomputes so each thread can look up both endpoints of "its"
        edge (COO row array).
        """
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees)

    def isolated_vertices(self) -> np.ndarray:
        """Vertices with no outgoing edges.

        The paper notes the Jia et al. reference code cannot read graphs
        containing isolated vertices, and that the kron generator emits
        many of them — we keep them addressable so that behaviour can be
        modelled faithfully.
        """
        return np.flatnonzero(self.degrees == 0)

    # ------------------------------------------------------------------
    # Conversions / dunder methods
    # ------------------------------------------------------------------
    def to_edge_list(self) -> np.ndarray:
        """Return an ``(E, 2)`` array of directed edges (u, v)."""
        return np.column_stack([self.edge_sources(), self.adj])

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "undirected" if self.undirected else "directed"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<CSRGraph{label} {kind} n={self.num_vertices} m={self.num_edges}"
            f" max_deg={self.max_degree}>"
        )

    def with_name(self, name: str) -> "CSRGraph":
        """Return a copy of this graph carrying a different label."""
        return CSRGraph(self.indptr, self.adj, undirected=self.undirected, name=name)

    def memory_footprint_bytes(self) -> int:
        """Bytes needed to hold the CSR arrays (what a device copy costs)."""
        return int(self.indptr.nbytes + self.adj.nbytes)
