"""Graph file readers/writers for the formats the paper's datasets ship in.

Supported formats:

* **SNAP edge list** (``# comment`` lines, one ``u v`` pair per line) —
  the Stanford Network Analysis Platform distribution format used for
  ``loc-gowalla`` and ``com-amazon``.
* **DIMACS-10 / METIS** adjacency format used by the 10th DIMACS
  Implementation Challenge graphs (``luxembourg.osm``, ``delaunay_n20``,
  ``kron_g500-logn20``, ...): a header ``n m`` line followed by one line
  per vertex listing its (1-indexed) neighbours.
* **Matrix Market** coordinate pattern format used by the University of
  Florida Sparse Matrix Collection (``af_shell9``).
* **NumPy ``.npz`` CSR payloads** (``indptr``/``adj`` arrays) — the
  repo's own binary interchange format for preprocessed graphs.

Every reader validates its input *at load time* — negative or
out-of-range vertex ids, non-monotone CSR offsets, malformed headers —
and raises :class:`~repro.errors.GraphFormatError` carrying the file
name and line number, instead of letting a poisoned graph fail deep
inside a traversal kernel.
"""

from __future__ import annotations

import io as _io
import os
from typing import TextIO

import numpy as np

from ..errors import GraphFormatError, GraphStructureError
from .build import from_edges
from .csr import CSRGraph

__all__ = [
    "read_snap_edgelist",
    "write_snap_edgelist",
    "read_dimacs_metis",
    "write_dimacs_metis",
    "read_matrix_market",
    "write_matrix_market",
    "read_csr_npz",
    "write_csr_npz",
    "load_graph",
]


def _open(path_or_file, mode: str = "r"):
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, mode), True


def _label(path_or_file) -> str:
    """File label for error context: the path, or the stream's name."""
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return str(getattr(path_or_file, "name", "<stream>"))
    return str(path_or_file)


def read_snap_edgelist(path_or_file, undirected: bool = True, name: str = "") -> CSRGraph:
    """Read a SNAP-style edge list (``#`` comments, whitespace pairs)."""
    fh, close = _open(path_or_file)
    where = _label(path_or_file)
    try:
        pairs = []
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{where}: line {lineno}: expected 'u v', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{where}: line {lineno}: non-integer endpoint in {line!r}"
                ) from exc
            if u < 0 or v < 0:
                raise GraphFormatError(
                    f"{where}: line {lineno}: negative vertex id in {line!r}"
                )
            pairs.append((u, v))
    finally:
        if close:
            fh.close()
    edges = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edges(edges, undirected=undirected, name=name)


def write_snap_edgelist(g: CSRGraph, path_or_file) -> None:
    """Write one direction of each edge in SNAP edge-list format."""
    fh, close = _open(path_or_file, "w")
    try:
        fh.write(f"# repro graph {g.name}\n# n={g.num_vertices} m={g.num_edges}\n")
        src = g.edge_sources()
        if g.undirected:
            mask = src <= g.adj
            src, dst = src[mask], g.adj[mask]
        else:
            dst = g.adj
        for u, v in zip(src.tolist(), dst.tolist()):
            fh.write(f"{u}\t{v}\n")
    finally:
        if close:
            fh.close()


def read_dimacs_metis(path_or_file, name: str = "") -> CSRGraph:
    """Read a DIMACS-10/METIS adjacency file (1-indexed, undirected)."""
    fh, close = _open(path_or_file)
    where = _label(path_or_file)
    try:
        header = None
        rows: list[tuple[int, list[int]]] = []
        for lineno, line in enumerate(fh, 1):
            stripped = line.strip()
            if stripped.startswith("%"):
                continue
            if header is None:
                if not stripped:
                    continue  # leading blank lines before the header
                parts = stripped.split()
                if len(parts) < 2:
                    raise GraphFormatError(
                        f"{where}: line {lineno}: bad METIS header {line!r}"
                    )
                try:
                    header = (int(parts[0]), int(parts[1]))
                except ValueError as exc:
                    raise GraphFormatError(
                        f"{where}: line {lineno}: non-integer METIS header "
                        f"{line!r}"
                    ) from exc
                if header[0] < 0 or header[1] < 0:
                    raise GraphFormatError(
                        f"{where}: line {lineno}: negative count in METIS "
                        f"header {line!r}"
                    )
                continue
            # After the header every non-comment line is one vertex's
            # adjacency row; a blank line is an isolated vertex.
            try:
                rows.append((lineno, [int(x) for x in stripped.split()]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{where}: line {lineno}: non-integer neighbour"
                ) from exc
        if header is None:
            raise GraphFormatError(f"{where}: missing METIS header line")
        n, m = header
        # Tolerate a missing trailing blank line for a final isolated vertex.
        while len(rows) < n:
            rows.append((-1, []))
        if len(rows) > n:
            raise GraphFormatError(
                f"{where}: expected {n} adjacency rows, found {len(rows)}"
            )
        pairs = []
        for u, (lineno, nbrs) in enumerate(rows):
            for v1 in nbrs:
                if not 1 <= v1 <= n:
                    raise GraphFormatError(
                        f"{where}: line {lineno}: vertex id {v1} out of "
                        f"1..{n}"
                    )
                pairs.append((u, v1 - 1))
        edges = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        g = from_edges(edges, num_vertices=n, undirected=True, name=name,
                       already_symmetric=True)
        if g.num_edges != m:
            # METIS headers count undirected edges; tolerate mismatches that
            # arise from duplicate rows but surface gross corruption.
            if abs(g.num_edges - m) > m:
                raise GraphFormatError(
                    f"{where}: header claims {m} edges, file contains "
                    f"{g.num_edges}"
                )
        return g
    finally:
        if close:
            fh.close()


def write_dimacs_metis(g: CSRGraph, path_or_file) -> None:
    """Write an undirected graph in METIS adjacency format."""
    if not g.undirected:
        raise GraphFormatError("METIS format stores undirected graphs")
    fh, close = _open(path_or_file, "w")
    try:
        fh.write(f"{g.num_vertices} {g.num_edges}\n")
        for v in range(g.num_vertices):
            fh.write(" ".join(str(int(w) + 1) for w in g.neighbors(v)) + "\n")
    finally:
        if close:
            fh.close()


def read_matrix_market(path_or_file, name: str = "") -> CSRGraph:
    """Read a Matrix Market coordinate file as an undirected graph.

    Symmetric pattern/real matrices (the UFL collection convention) are
    supported; entry values are ignored, the sparsity pattern defines the
    edges, and diagonal entries (self loops) are dropped.
    """
    fh, close = _open(path_or_file)
    where = _label(path_or_file)
    try:
        first = fh.readline()
        if not first.startswith("%%MatrixMarket"):
            raise GraphFormatError(f"{where}: missing MatrixMarket banner")
        tokens = first.split()
        if len(tokens) < 5 or tokens[1] != "matrix" or tokens[2] != "coordinate":
            raise GraphFormatError(
                f"{where}: unsupported MatrixMarket header: {first!r}"
            )
        lineno = 1
        line = fh.readline()
        lineno += 1
        while line.startswith("%"):
            line = fh.readline()
            lineno += 1
        parts = line.split()
        if len(parts) != 3:
            raise GraphFormatError(
                f"{where}: line {lineno}: bad size line: {line!r}"
            )
        try:
            nrows, ncols, nnz = (int(x) for x in parts)
        except ValueError as exc:
            raise GraphFormatError(
                f"{where}: line {lineno}: non-integer size line: {line!r}"
            ) from exc
        if nrows < 0 or ncols < 0 or nnz < 0:
            raise GraphFormatError(
                f"{where}: line {lineno}: negative dimension in size line: "
                f"{line!r}"
            )
        n = max(nrows, ncols)
        pairs = []
        entries = 0
        for lineno, line in enumerate(fh, lineno + 1):
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{where}: line {lineno}: expected 'row col', got "
                    f"{line!r}"
                )
            try:
                u1, v1 = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{where}: line {lineno}: non-integer coordinate in "
                    f"{line!r}"
                ) from exc
            if not (1 <= u1 <= nrows and 1 <= v1 <= ncols):
                raise GraphFormatError(
                    f"{where}: line {lineno}: entry ({u1}, {v1}) outside "
                    f"the declared {nrows} x {ncols} matrix"
                )
            entries += 1
            if u1 != v1:
                pairs.append((u1 - 1, v1 - 1))
        if entries != nnz:
            raise GraphFormatError(
                f"{where}: size line declares {nnz} entries, file contains "
                f"{entries}"
            )
        edges = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        return from_edges(edges, num_vertices=n, undirected=True, name=name)
    finally:
        if close:
            fh.close()


def write_matrix_market(g: CSRGraph, path_or_file) -> None:
    """Write the lower triangle of an undirected graph as a symmetric
    pattern Matrix Market file."""
    fh, close = _open(path_or_file, "w")
    try:
        fh.write("%%MatrixMarket matrix coordinate pattern symmetric\n")
        src = g.edge_sources()
        mask = src >= g.adj if g.undirected else np.ones(src.size, bool)
        su, sv = src[mask], g.adj[mask]
        n = g.num_vertices
        fh.write(f"{n} {n} {su.size}\n")
        for u, v in zip(su.tolist(), sv.tolist()):
            fh.write(f"{u + 1} {v + 1}\n")
    finally:
        if close:
            fh.close()


def read_csr_npz(path, name: str = "") -> CSRGraph:
    """Read a CSR graph from a NumPy ``.npz`` payload.

    The payload must contain ``indptr`` and ``adj`` arrays (plus
    optional ``undirected``/``name`` scalars, as written by
    :func:`write_csr_npz`).  The CSR structure is validated before the
    graph is returned — non-monotone offsets, ``indptr``/``adj`` length
    mismatches, and out-of-range adjacency targets all raise
    :class:`~repro.errors.GraphFormatError` with the file named, rather
    than surfacing later as an index error inside a traversal kernel.
    """
    where = str(path)
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise GraphFormatError(f"{where}: not a readable .npz file: {exc}") from exc
    with data:
        missing = {"indptr", "adj"} - set(data.files)
        if missing:
            raise GraphFormatError(
                f"{where}: missing CSR arrays {sorted(missing)}"
            )
        indptr = data["indptr"]
        adj = data["adj"]
        undirected = bool(data["undirected"]) if "undirected" in data.files else True
        stored_name = str(data["name"]) if "name" in data.files else ""
    if not np.issubdtype(indptr.dtype, np.integer) \
            or not np.issubdtype(adj.dtype, np.integer):
        raise GraphFormatError(
            f"{where}: indptr/adj must be integer arrays, got "
            f"{indptr.dtype}/{adj.dtype}"
        )
    try:
        return CSRGraph(indptr, adj, undirected=undirected,
                        name=name or stored_name)
    except GraphStructureError as exc:
        raise GraphFormatError(f"{where}: invalid CSR payload: {exc}") from exc


def write_csr_npz(g: CSRGraph, path) -> None:
    """Write a graph as a NumPy ``.npz`` CSR payload (see
    :func:`read_csr_npz`)."""
    np.savez(path, indptr=g.indptr, adj=g.adj,
             undirected=np.bool_(g.undirected), name=np.str_(g.name))


_EXTENSIONS = {
    ".txt": read_snap_edgelist,
    ".edges": read_snap_edgelist,
    ".graph": read_dimacs_metis,
    ".metis": read_dimacs_metis,
    ".mtx": read_matrix_market,
    ".npz": read_csr_npz,
}


def load_graph(path: str, name: str = "") -> CSRGraph:
    """Load a graph file, dispatching on its extension."""
    ext = os.path.splitext(path)[1].lower()
    reader = _EXTENSIONS.get(ext)
    if reader is None:
        raise GraphFormatError(
            f"unknown graph extension {ext!r}; known: {sorted(_EXTENSIONS)}"
        )
    return reader(path, name=name or os.path.basename(path))
