"""Structural statistics used by Table II and by strategy selection.

The columns of the paper's Table II are: vertices, edges, max degree,
diameter, description.  Exact diameters of million-vertex graphs are
expensive, so we provide both an exact (all-sources, small graphs only)
computation and the standard double-sweep / multi-sample lower-bound
estimate that is accurate on the graph families used here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph
from .traversal import bfs

__all__ = [
    "GraphStats",
    "degree_histogram",
    "connected_component_sizes",
    "exact_diameter",
    "estimate_diameter",
    "graph_stats",
]


@dataclass(frozen=True)
class GraphStats:
    """Row of Table II for one graph."""

    name: str
    num_vertices: int
    num_edges: int
    max_degree: int
    diameter: int
    diameter_exact: bool
    num_components: int
    largest_component: int
    description: str = ""


def degree_histogram(g: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with out-degree ``d``."""
    deg = g.degrees
    if deg.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(deg).astype(np.int64)


def connected_component_sizes(g: CSRGraph) -> np.ndarray:
    """Sizes of (weak) connected components, descending."""
    from .build import _component_labels

    if g.num_vertices == 0:
        return np.empty(0, dtype=np.int64)
    sizes = np.bincount(_component_labels(g)).astype(np.int64)
    return np.sort(sizes)[::-1]


def exact_diameter(g: CSRGraph) -> int:
    """Exact diameter of the largest component (O(nm): small graphs only)."""
    if g.num_vertices == 0:
        return 0
    best = 0
    for v in range(g.num_vertices):
        best = max(best, bfs(g, v).max_depth)
    return best


def estimate_diameter(g: CSRGraph, samples: int = 8, seed: int = 0) -> int:
    """Double-sweep diameter lower bound from several random starts.

    For trees, meshes and road networks the double sweep is exact or
    near-exact; for small-world graphs it is within one or two of the true
    diameter — good enough for the structural classification the paper's
    strategies rely on.
    """
    n = g.num_vertices
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    deg = g.degrees
    candidates = np.flatnonzero(deg > 0)
    if candidates.size == 0:
        return 0
    best = 0
    for _ in range(max(1, samples)):
        start = int(rng.choice(candidates))
        first = bfs(g, start)
        if first.max_depth == 0:
            continue
        # Sweep again from a vertex on the deepest level.
        far = int(first.levels[-1][0])
        second = bfs(g, far)
        best = max(best, first.max_depth, second.max_depth)
    return best


def graph_stats(
    g: CSRGraph,
    exact: bool | None = None,
    diameter_samples: int = 8,
    seed: int = 0,
    description: str = "",
) -> GraphStats:
    """Compute a Table II row for ``g``.

    ``exact`` defaults to True for graphs with at most 2000 vertices.
    """
    if exact is None:
        exact = g.num_vertices <= 2000
    comp = connected_component_sizes(g)
    diam = exact_diameter(g) if exact else estimate_diameter(
        g, samples=diameter_samples, seed=seed
    )
    return GraphStats(
        name=g.name or "graph",
        num_vertices=g.num_vertices,
        num_edges=g.num_edges,
        max_degree=g.max_degree,
        diameter=diam,
        diameter_exact=bool(exact),
        num_components=int(comp.size),
        largest_component=int(comp[0]) if comp.size else 0,
        description=description,
    )
