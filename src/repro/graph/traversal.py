"""Level-synchronous breadth-first search over :class:`CSRGraph`.

This is the shared traversal engine: a queue-based ("work-efficient" in
the paper's terminology) BFS that records the vertex frontier of every
level.  The BC kernels build on the same expansion primitive but add
shortest-path counting; plain BFS is used by the statistics module
(diameter / eccentricity), the sampling strategy (Algorithm 5 measures
max BFS depth of sampled roots), and the Figure 3 frontier-evolution
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import concat_ranges
from .csr import CSRGraph

__all__ = [
    "BFSResult",
    "bfs",
    "bfs_distances",
    "multi_source_bfs",
    "frontier_sizes",
    "eccentricity",
]

UNREACHED = -1


@dataclass(frozen=True)
class BFSResult:
    """Outcome of a single-source BFS.

    Attributes
    ----------
    source:
        Root vertex.
    distances:
        ``int64`` array; ``-1`` for unreachable vertices.
    levels:
        List of frontier arrays; ``levels[i]`` holds the vertices at
        distance ``i`` (``levels[0] == [source]``).
    """

    source: int
    distances: np.ndarray
    levels: list

    @property
    def max_depth(self) -> int:
        """Depth of the deepest reached level (0 for a lone root)."""
        return len(self.levels) - 1

    @property
    def num_reached(self) -> int:
        """Number of vertices reached, including the source."""
        return sum(f.size for f in self.levels)

    def vertex_frontier_sizes(self) -> np.ndarray:
        """``|levels[i]|`` per level — the series plotted in Figure 3."""
        return np.array([f.size for f in self.levels], dtype=np.int64)

    def edge_frontier_sizes(self, g: CSRGraph) -> np.ndarray:
        """Out-edges per level — the edge-frontier series of Table I."""
        deg = g.degrees
        return np.array([int(deg[f].sum()) for f in self.levels], dtype=np.int64)


def bfs(g: CSRGraph, source: int) -> BFSResult:
    """Queue-based level-synchronous BFS from ``source``."""
    n = g.num_vertices
    source = int(source)
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    dist = np.full(n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    levels = [frontier]
    depth = 0
    indptr, adj = g.indptr, g.adj
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        nbrs = adj[concat_ranges(starts, counts)]
        fresh = nbrs[dist[nbrs] == UNREACHED]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        depth += 1
        dist[frontier] = depth
        levels.append(frontier)
    return BFSResult(source=source, distances=dist, levels=levels)


def bfs_distances(g: CSRGraph, source: int) -> np.ndarray:
    """Distances only (convenience wrapper around :func:`bfs`)."""
    return bfs(g, source).distances


def multi_source_bfs(g: CSRGraph, sources) -> np.ndarray:
    """Distance from the *nearest* of ``sources`` to every vertex.

    Level-synchronous BFS seeded with the whole source set at depth 0 —
    the standard building block for Voronoi-style partitioning of a
    graph around landmark vertices (and a cheap upper-bound oracle for
    eccentricity pruning).  Returns -1 for unreachable vertices.
    """
    n = g.num_vertices
    src = np.unique(np.asarray(sources, dtype=np.int64).ravel())
    if src.size and (src[0] < 0 or src[-1] >= n):
        raise IndexError(f"sources out of range [0, {n})")
    dist = np.full(n, UNREACHED, dtype=np.int64)
    if src.size == 0:
        return dist
    dist[src] = 0
    frontier = src
    depth = 0
    indptr, adj = g.indptr, g.adj
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        nbrs = adj[concat_ranges(starts, counts)]
        fresh = nbrs[dist[nbrs] == UNREACHED]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        depth += 1
        dist[frontier] = depth
    return dist


def frontier_sizes(g: CSRGraph, source: int) -> np.ndarray:
    """Vertex-frontier size per BFS level from ``source`` (Figure 3 series)."""
    return bfs(g, source).vertex_frontier_sizes()


def eccentricity(g: CSRGraph, source: int) -> int:
    """Max finite BFS distance from ``source`` (its eccentricity within
    its connected component)."""
    return bfs(g, source).max_depth
