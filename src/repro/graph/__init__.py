"""Graph substrate: CSR container, builders, I/O, traversal, statistics."""

from .build import (
    dedupe_edges,
    from_edges,
    from_networkx,
    induced_subgraph,
    largest_connected_component,
    relabel,
    symmetrize_edges,
    to_networkx,
)
from .csr import CSRGraph
from .io import (
    load_graph,
    read_dimacs_metis,
    read_matrix_market,
    read_snap_edgelist,
    write_dimacs_metis,
    write_matrix_market,
    write_snap_edgelist,
)
from .stats import (
    GraphStats,
    connected_component_sizes,
    degree_histogram,
    estimate_diameter,
    exact_diameter,
    graph_stats,
)
from .traversal import (
    BFSResult,
    bfs,
    bfs_distances,
    eccentricity,
    frontier_sizes,
    multi_source_bfs,
)

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_networkx",
    "to_networkx",
    "symmetrize_edges",
    "dedupe_edges",
    "largest_connected_component",
    "induced_subgraph",
    "relabel",
    "load_graph",
    "read_snap_edgelist",
    "write_snap_edgelist",
    "read_dimacs_metis",
    "write_dimacs_metis",
    "read_matrix_market",
    "write_matrix_market",
    "GraphStats",
    "graph_stats",
    "degree_histogram",
    "connected_component_sizes",
    "exact_diameter",
    "estimate_diameter",
    "BFSResult",
    "bfs",
    "bfs_distances",
    "multi_source_bfs",
    "frontier_sizes",
    "eccentricity",
]
