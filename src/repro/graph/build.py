"""Builders that turn edge lists / NetworkX graphs into :class:`CSRGraph`."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import GraphStructureError
from .csr import CSRGraph

__all__ = [
    "from_edges",
    "from_networkx",
    "to_networkx",
    "symmetrize_edges",
    "dedupe_edges",
    "largest_connected_component",
    "relabel",
    "induced_subgraph",
]


def symmetrize_edges(edges: np.ndarray) -> np.ndarray:
    """Return edges plus their reverses (``(E, 2)`` -> ``(2E, 2)``)."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    return np.concatenate([edges, edges[:, ::-1]], axis=0)


def dedupe_edges(edges: np.ndarray, drop_self_loops: bool = True) -> np.ndarray:
    """Remove duplicate directed edges (and, by default, self loops)."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if drop_self_loops and edges.size:
        edges = edges[edges[:, 0] != edges[:, 1]]
    if edges.size == 0:
        return edges.reshape(0, 2)
    return np.unique(edges, axis=0)


def from_edges(
    edges,
    num_vertices: int | None = None,
    undirected: bool = True,
    dedupe: bool = True,
    name: str = "",
    already_symmetric: bool = False,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an ``(E, 2)`` array / iterable of pairs.

    Parameters
    ----------
    edges:
        Edge pairs.  For ``undirected=True`` each pair is treated as one
        undirected edge and stored in both directions.
    num_vertices:
        Total vertex count; defaults to ``max(edges) + 1``.  Providing it
        explicitly allows trailing isolated vertices (which the kron
        generator produces in quantity).
    dedupe:
        Drop duplicate edges and self loops before building.  The BC
        algorithms are only defined on simple graphs, so this is on by
        default.
    """
    edges = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if edges.size == 0:
        edges = np.empty((0, 2), dtype=np.int64)
    edges = edges.reshape(-1, 2).astype(np.int64, copy=False)
    if edges.size and edges.min() < 0:
        raise GraphStructureError("edge endpoints must be non-negative")
    inferred = int(edges.max()) + 1 if edges.size else 0
    n = inferred if num_vertices is None else int(num_vertices)
    if n < inferred:
        raise GraphStructureError(
            f"num_vertices={n} is smaller than max endpoint {inferred - 1}"
        )
    if undirected and not already_symmetric:
        edges = symmetrize_edges(edges)
    if dedupe:
        edges = dedupe_edges(edges)
    # CSR build: sort by source, then slice.
    order = np.lexsort((edges[:, 1], edges[:, 0])) if edges.size else np.empty(0, int)
    edges = edges[order]
    counts = np.bincount(edges[:, 0], minlength=n).astype(np.int64)
    indptr = np.concatenate([[0], np.cumsum(counts)])
    return CSRGraph(indptr, edges[:, 1].copy(), undirected=undirected, name=name)


def from_networkx(nxg, name: str = "") -> CSRGraph:
    """Convert a NetworkX graph (nodes relabelled to 0..n-1 in sorted order)."""
    import networkx as nx

    nodes = sorted(nxg.nodes())
    index = {u: i for i, u in enumerate(nodes)}
    undirected = not nxg.is_directed()
    edges = np.array(
        [(index[u], index[v]) for u, v in nxg.edges()], dtype=np.int64
    ).reshape(-1, 2)
    return from_edges(
        edges, num_vertices=len(nodes), undirected=undirected,
        name=name or str(nxg.name or ""),
    )


def to_networkx(g: CSRGraph):
    """Convert a :class:`CSRGraph` to a NetworkX graph (for cross-checks)."""
    import networkx as nx

    nxg = nx.Graph() if g.undirected else nx.DiGraph()
    nxg.add_nodes_from(range(g.num_vertices))
    src = g.edge_sources()
    if g.undirected:
        mask = src <= g.adj  # keep one direction of each symmetric pair
        nxg.add_edges_from(zip(src[mask].tolist(), g.adj[mask].tolist()))
    else:
        nxg.add_edges_from(zip(src.tolist(), g.adj.tolist()))
    return nxg


def _component_labels(g: CSRGraph) -> np.ndarray:
    """Connected-component label per vertex via scipy (weakly for directed)."""
    import scipy.sparse as sp
    import scipy.sparse.csgraph as csgraph

    n = g.num_vertices
    mat = sp.csr_matrix(
        (np.ones(g.adj.size, dtype=np.int8), g.adj, g.indptr), shape=(n, n)
    )
    _, labels = csgraph.connected_components(mat, directed=not g.undirected,
                                             connection="weak")
    return labels


def largest_connected_component(g: CSRGraph) -> CSRGraph:
    """Return the induced subgraph on the largest (weak) component."""
    if g.num_vertices == 0:
        return g
    labels = _component_labels(g)
    big = np.argmax(np.bincount(labels))
    keep = np.flatnonzero(labels == big)
    return induced_subgraph(g, keep)


def induced_subgraph(g: CSRGraph, vertices: Sequence[int]) -> CSRGraph:
    """Induced subgraph on ``vertices`` (relabelled to 0..k-1, sorted order)."""
    keep = np.unique(np.asarray(vertices, dtype=np.int64))
    if keep.size and (keep[0] < 0 or keep[-1] >= g.num_vertices):
        raise IndexError("vertices out of range")
    remap = np.full(g.num_vertices, -1, dtype=np.int64)
    remap[keep] = np.arange(keep.size)
    src = g.edge_sources()
    mask = (remap[src] >= 0) & (remap[g.adj] >= 0)
    edges = np.column_stack([remap[src[mask]], remap[g.adj[mask]]])
    return from_edges(
        edges, num_vertices=keep.size, undirected=g.undirected,
        dedupe=True, name=g.name, already_symmetric=True,
    )


def relabel(g: CSRGraph, permutation: Sequence[int]) -> CSRGraph:
    """Apply a vertex permutation: new id of vertex ``v`` is ``permutation[v]``.

    Used by the property tests to check BC scores are equivariant under
    relabelling.
    """
    perm = np.asarray(permutation, dtype=np.int64)
    n = g.num_vertices
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise GraphStructureError("permutation must be a bijection on 0..n-1")
    src = perm[g.edge_sources()]
    dst = perm[g.adj]
    return from_edges(
        np.column_stack([src, dst]), num_vertices=n, undirected=g.undirected,
        dedupe=False, name=g.name, already_symmetric=True,
    )
