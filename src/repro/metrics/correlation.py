"""Pearson correlations between frontier sizes and iteration time.

Table I of the paper reports, for three roots of five graphs, the
correlation of the per-iteration execution time with (a) the vertex
frontier size (rho_{v,t}) and (b) the edge frontier size (rho_{e,t}).
The punchline — the vertex frontier correlates strongly with time on
*every* structure, while the edge frontier decorrelates on scale-free
graphs — justifies keying the hybrid policy on vertex-frontier sizes,
which the explicit queue provides for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpusim.trace import RootTrace

__all__ = ["pearson", "FrontierCorrelation", "frontier_time_correlations"]


def pearson(x, y) -> float:
    """Pearson correlation coefficient; NaN for degenerate inputs."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("series must have equal length")
    if x.size < 2:
        return float("nan")
    sx = x.std()
    sy = y.std()
    if sx == 0 or sy == 0:
        return float("nan")
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))


@dataclass(frozen=True)
class FrontierCorrelation:
    """One Table I row: a (graph, root) pair's two correlations."""

    graph: str
    root: int
    rho_vertex_time: float
    rho_edge_time: float
    num_levels: int


def frontier_time_correlations(trace: RootTrace, graph_name: str = "") -> FrontierCorrelation:
    """Compute rho_{v,t} and rho_{e,t} from one root's forward trace."""
    v = trace.vertex_frontier_sizes()
    e = trace.edge_frontier_sizes()
    t = trace.forward_cycles()
    return FrontierCorrelation(
        graph=graph_name,
        root=trace.root,
        rho_vertex_time=pearson(v, t),
        rho_edge_time=pearson(e, t),
        num_levels=int(v.size),
    )
