"""Traversed-edges-per-second accounting (Eq. 4).

For exact BC over all n roots the paper (following Sarıyüce et al.)
defines ``TEPS_BC = m * n / t`` with m the number of undirected edges.
Partial runs over k roots use ``m * k / t``, which extrapolates to the
same figure under uniform per-root cost.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["teps", "mteps", "gteps", "format_teps", "TEPSReport"]


def teps(num_edges: int, num_roots: int, seconds: float) -> float:
    """``m * k / t`` — Eq. 4 restricted to ``k`` processed roots."""
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    if seconds == 0:
        return float("inf")
    return float(num_edges) * float(num_roots) / float(seconds)


def mteps(num_edges: int, num_roots: int, seconds: float) -> float:
    """Millions of traversed edges per second (Table III units)."""
    return teps(num_edges, num_roots, seconds) / 1e6


def gteps(num_edges: int, num_roots: int, seconds: float) -> float:
    """Billions of traversed edges per second (Table IV units)."""
    return teps(num_edges, num_roots, seconds) / 1e9


def format_teps(value: float) -> str:
    """Human-readable TEPS with the unit the paper would use."""
    if value >= 1e9:
        return f"{value / 1e9:.2f} GTEPS"
    if value >= 1e6:
        return f"{value / 1e6:.2f} MTEPS"
    if value >= 1e3:
        return f"{value / 1e3:.2f} KTEPS"
    return f"{value:.2f} TEPS"


@dataclass(frozen=True)
class TEPSReport:
    """A (graph, method) performance record used by the Table III rows."""

    graph: str
    method: str
    num_vertices: int
    num_edges: int
    num_roots: int
    seconds: float

    @property
    def teps(self) -> float:
        return teps(self.num_edges, self.num_roots, self.seconds)

    @property
    def mteps(self) -> float:
        return self.teps / 1e6

    def speedup_over(self, other: "TEPSReport") -> float:
        """Time ratio other/self (how much faster self is)."""
        if self.seconds == 0:
            return float("inf")
        return other.seconds / self.seconds
