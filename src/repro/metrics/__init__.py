"""Measurement utilities: TEPS, correlations, frontier evolution."""

from .correlation import FrontierCorrelation, frontier_time_correlations, pearson
from .frontier import FrontierEvolution, classify_frontier_shape, frontier_evolution
from .teps import TEPSReport, format_teps, gteps, mteps, teps

__all__ = [
    "pearson",
    "FrontierCorrelation",
    "frontier_time_correlations",
    "FrontierEvolution",
    "frontier_evolution",
    "classify_frontier_shape",
    "teps",
    "mteps",
    "gteps",
    "format_teps",
    "TEPSReport",
]
