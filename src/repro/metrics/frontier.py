"""Frontier-evolution measurements (Figure 3).

Figure 3 plots, for three randomly chosen roots per graph, the vertex
frontier of each BFS iteration as a percentage of total vertices.  The
qualitative split it demonstrates — high-diameter graphs keep small,
slowly-evolving frontiers; small-world/scale-free graphs balloon to
half the graph within a few iterations — is the empirical basis of the
hybrid strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.traversal import bfs

__all__ = ["FrontierEvolution", "frontier_evolution", "classify_frontier_shape"]


@dataclass(frozen=True)
class FrontierEvolution:
    """Frontier series of one (graph, root) pair."""

    graph: str
    root: int
    sizes: np.ndarray       # vertices per level
    percentages: np.ndarray  # sizes / n * 100

    @property
    def num_levels(self) -> int:
        return int(self.sizes.size)

    @property
    def peak_percentage(self) -> float:
        """Largest frontier as a percentage of n (Figure 3's y peak)."""
        return float(self.percentages.max(initial=0.0))


def frontier_evolution(g: CSRGraph, root: int) -> FrontierEvolution:
    """Measure the vertex-frontier series from ``root``."""
    sizes = bfs(g, int(root)).vertex_frontier_sizes()
    n = max(g.num_vertices, 1)
    return FrontierEvolution(
        graph=g.name or "graph",
        root=int(root),
        sizes=sizes,
        percentages=sizes.astype(np.float64) / n * 100.0,
    )


def classify_frontier_shape(evo: FrontierEvolution,
                            large_threshold_pct: float = 10.0) -> str:
    """Coarse classification of a frontier series.

    ``"ballooning"`` — some frontier exceeds ``large_threshold_pct`` of
    the graph (small-world / scale-free behaviour, Figure 3c/3e);
    ``"gradual"`` — frontiers stay small throughout (high-diameter
    behaviour, Figure 3a/3b/3d).
    """
    return "ballooning" if evo.peak_percentage > large_threshold_pct else "gradual"
