"""Silent-data-corruption detection: ABFT invariants + verification policy.

The fault model of :mod:`repro.resilience` covers ranks that *die*;
this package covers ranks that *lie* — a bit-flip in ``sigma``,
``delta``, ``dist``, a partial BC vector, or an in-flight reduce buffer
silently poisons the final scores unless something checks the algebra.
Brandes's structure makes those checks cheap (per-root ABFT):

>>> import numpy as np
>>> from repro.graph.generators import figure1_graph
>>> from repro.bc.frontier import forward_sweep
>>> from repro.bc.accumulation import dependency_accumulation
>>> from repro.verify import RootChecker, VerificationPolicy
>>> g = figure1_graph()
>>> fwd = forward_sweep(g, 0)
>>> delta = dependency_accumulation(g, fwd)
>>> checker = RootChecker(VerificationPolicy("paranoid"))
>>> checker.check_root(g, fwd, delta)
[]
>>> delta[4] *= 2.0  # simulate a corrupted dependency
>>> [v.invariant for v in checker.check_root(g, fwd, delta)]
['checksum']

Consumers: :meth:`repro.gpusim.Device.run_bc` (raises
:class:`~repro.errors.SilentCorruptionError` on detection) and
:func:`repro.resilience.resilient_distributed_bc` (quarantines and
recomputes corrupted roots instead of raising).
"""

from .invariants import RootChecker, Violation, expected_delta_checksum
from .policy import MODES, OFF, PARANOID, SAMPLED, VerificationPolicy

__all__ = [
    "OFF",
    "SAMPLED",
    "PARANOID",
    "MODES",
    "VerificationPolicy",
    "RootChecker",
    "Violation",
    "expected_delta_checksum",
]
