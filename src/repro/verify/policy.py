"""Verification policy: how much ABFT checking a run pays for.

Three modes, mirroring the fault-injection trade-off the paper's
192-GPU scale forces (a bit-flip in one rank's ``sigma`` poisons the
global reduce, but checking every invariant on every root costs real
time):

* ``off`` — no checks; corruption flows through silently.  The
  default, and the right choice when the substrate is trusted.
* ``sampled`` — a deterministic subset of roots (one in
  :attr:`VerificationPolicy.root_period`) gets the full per-root suite,
  with structural invariants spot-checked on
  :attr:`~VerificationPolicy.sample_vertices` vertices.  Bounded
  overhead (guarded at <= 15% by ``tests/verify/test_overhead.py``),
  probabilistic detection.
* ``paranoid`` — every root, every vertex, vectorised.  Any single
  meaningful bit-flip in ``dist``/``sigma``/``delta``/partial BC is
  detected (the exhaustive property test in
  ``tests/resilience/test_sdc.py``).

Root selection is a pure hash of ``(root, seed)`` — no RNG state — so
the same root is checked (or not) on every recovery round, and two
runs of the same plan verify identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultSpecError

__all__ = ["OFF", "SAMPLED", "PARANOID", "MODES", "VerificationPolicy"]

OFF = "off"
SAMPLED = "sampled"
PARANOID = "paranoid"
MODES = (OFF, SAMPLED, PARANOID)

#: Knuth multiplicative hash constant for deterministic root sampling.
_HASH_MULT = 2654435761


@dataclass(frozen=True)
class VerificationPolicy:
    """Tunable knobs of the ABFT verification layer.

    Parameters
    ----------
    mode:
        ``"off"``, ``"sampled"`` or ``"paranoid"``.
    root_period:
        In sampled mode, one of every ``root_period`` roots is checked.
    sample_vertices:
        Vertices spot-checked per structural invariant in sampled mode.
    rtol, atol:
        Tolerances for the floating-point checksum comparisons.  The
        per-root dependency checksum accumulates O(n) rounding error,
        so ``rtol`` must sit well above 1e-15 yet far below the
        relative error a meaningful bit-flip introduces (>= ~2**-12
        for mantissa bits >= 40).
    seed:
        Salt for the deterministic root-sampling hash.
    """

    mode: str = OFF
    root_period: int = 4
    sample_vertices: int = 64
    rtol: float = 1e-8
    atol: float = 1e-12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise FaultSpecError(
                f"unknown verification mode {self.mode!r}; known: {MODES}"
            )
        if self.root_period < 1:
            raise FaultSpecError("root_period must be >= 1")
        if self.sample_vertices < 1:
            raise FaultSpecError("sample_vertices must be >= 1")
        if not self.rtol >= 0 or not self.atol >= 0:
            raise FaultSpecError("tolerances must be >= 0")

    # ------------------------------------------------------------------
    @classmethod
    def coerce(cls, value) -> "VerificationPolicy":
        """Accept a policy, a mode string, or ``None`` (-> off)."""
        if value is None:
            return cls(OFF)
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(value.strip().lower())
        raise FaultSpecError(
            f"cannot interpret {value!r} as a verification policy"
        )

    @property
    def enabled(self) -> bool:
        return self.mode != OFF

    @property
    def paranoid(self) -> bool:
        return self.mode == PARANOID

    def checks_root(self, root: int) -> bool:
        """Deterministically decide whether ``root`` gets the per-root
        invariant suite under this policy."""
        if self.mode == OFF:
            return False
        if self.mode == PARANOID:
            return True
        h = ((int(root) + 1) * _HASH_MULT) ^ (self.seed * 97)
        return (h % self.root_period) == 0
