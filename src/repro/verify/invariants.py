"""Cheap ABFT invariant checkers for one Brandes root.

Brandes's two stages leave enough algebraic structure behind that a
corrupted run can be caught without recomputing it (the classic
algorithm-based-fault-tolerance move, applied per root because BC's
per-root independence makes the root the natural quarantine unit):

* **Range/structure (B1)** — ``dist`` values lie in ``{-1} U [0, n)``
  with ``dist[root] == 0``; ``sigma`` is finite, positive exactly on
  reached vertices (``sigma[root]`` consistent with its level scale);
  ``delta`` is finite, non-negative, zero on unreached vertices and at
  the root.
* **BFS level consistency (B2)** — every reached non-root vertex has a
  parent at depth ``d - 1``; on undirected graphs neighbouring depths
  differ by at most 1 and no reached vertex has an unreached
  neighbour.
* **Sigma multiplicativity (B3)** — shortest-path counts satisfy
  ``sigma[v] == sum(sigma[u] for u in pred(v))`` over tree edges
  (skipped, and counted as skipped, when per-level sigma rescaling is
  active — the identity then holds only across scale factors).
* **Dependency checksum (B4)** — summing Brandes's accumulation over
  all vertices telescopes into a distance identity:
  ``sum(delta) == sum(dist[reached]) - (reached - 1)``
  (each shortest s-t path contributes ``d(s,t) - 1`` interior hops).
  One O(n) reduction cross-checks *both* stages: it moves if ``delta``
  is corrupted and (through the right-hand side) if ``dist`` is.

``paranoid`` policies run B2/B3 vectorised over every edge; ``sampled``
policies spot-check a deterministic vertex sample.  B1 and B4 are O(n)
and run for every checked root in both modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..bc.frontier import ForwardResult
from ..observability.registry import NULL_REGISTRY
from .policy import VerificationPolicy

__all__ = ["Violation", "RootChecker", "expected_delta_checksum"]

UNREACHED = -1

#: Invariant identifiers carried on :class:`Violation` records.
RANGE = "range"
LEVEL = "level"
SIGMA = "sigma"
CHECKSUM = "checksum"
PARTIAL = "partial"
REDUCE = "reduce"


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach."""

    invariant: str
    root: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant}@root {self.root}] {self.detail}"


def expected_delta_checksum(distances: np.ndarray,
                            target_weights: np.ndarray | None = None,
                            source_weight: float = 1.0) -> float:
    """Right-hand side of the B4 identity: ``sum(d) - (reached - 1)``
    over reached vertices (0.0 when only the root is reached).

    With ``target_weights`` (the degree-1 folding transform's weighted
    accumulation, see :mod:`repro.bc.preprocess`), each target ``t``
    contributes ``w[t] * (d(s, t) - 1)`` interior hops and the identity
    generalises to ``sum(w * d) - (sum(w) - w[source])`` over reached
    vertices.  ``source_weight`` scales the whole expectation when the
    checked ``delta`` was pre-multiplied by the root's own weight.
    """
    reached = distances >= 0
    count = int(reached.sum())
    if count <= 1:
        return 0.0
    if target_weights is None:
        base = float(distances[reached].sum()) - (count - 1)
    else:
        w = target_weights[reached]
        src = int(np.flatnonzero(reached & (distances == 0))[0])
        base = float((w * distances[reached]).sum()) \
            - (float(w.sum()) - float(target_weights[src]))
    return base * source_weight


class RootChecker:
    """Applies a :class:`~repro.verify.VerificationPolicy`'s invariant
    suite to per-root state; stateless apart from metrics counters."""

    def __init__(self, policy: VerificationPolicy, metrics=None):
        self.policy = policy
        self.metrics = NULL_REGISTRY if metrics is None else metrics

    # ------------------------------------------------------------------
    def _close(self, got: float, expect: float) -> bool:
        tol = self.policy.rtol * max(1.0, abs(expect)) + self.policy.atol
        return abs(got - expect) <= tol

    def _record(self, violations: list, invariant: str, root: int,
                detail: str) -> None:
        violations.append(Violation(invariant, int(root), detail))
        self.metrics.inc("verify.violations", invariant=invariant)

    # ------------------------------------------------------------------
    def check_root(self, g: CSRGraph, fwd: ForwardResult,
                   delta: np.ndarray,
                   target_weights: np.ndarray | None = None,
                   source_weight: float = 1.0) -> list:
        """Run the per-root suite; returns the (possibly empty) list of
        :class:`Violation` records.

        ``target_weights``/``source_weight`` describe a weighted (folded
        core) traversal so B4's distance identity stays exact — B1-B3
        are weight-independent and run unchanged.
        """
        violations: list = []
        self.metrics.inc("verify.checks", invariant="root")
        self._check_ranges(g, fwd, delta, violations)
        scales_active = (fwd.level_scales is not None
                         and bool(np.any(fwd.level_scales != 1.0)))
        if self.policy.paranoid:
            self._check_structure_full(g, fwd, scales_active, violations)
        else:
            self._check_structure_sampled(g, fwd, scales_active, violations)
        self._check_checksum(fwd, delta, violations,
                             target_weights=target_weights,
                             source_weight=source_weight)
        return violations

    # -- B1: ranges ----------------------------------------------------
    def _check_ranges(self, g, fwd, delta, violations) -> None:
        n = g.num_vertices
        d, sigma, root = fwd.distances, fwd.sigma, fwd.source
        bad = (d < UNREACHED) | (d >= n)
        if np.any(bad):
            v = int(np.flatnonzero(bad)[0])
            self._record(violations, RANGE, root,
                         f"dist[{v}] = {int(d[v])} outside {{-1}} U [0, {n})")
        elif d[root] != 0:
            self._record(violations, RANGE, root,
                         f"dist[root] = {int(d[root])}, expected 0")
        reached = d >= 0
        if not np.all(np.isfinite(sigma)):
            v = int(np.flatnonzero(~np.isfinite(sigma))[0])
            self._record(violations, RANGE, root, f"sigma[{v}] is not finite")
        else:
            bad = reached & (sigma <= 0.0)
            if np.any(bad):
                v = int(np.flatnonzero(bad)[0])
                self._record(violations, RANGE, root,
                             f"sigma[{v}] = {sigma[v]!r} for reached vertex")
            bad = ~reached & (sigma != 0.0)
            if np.any(bad):
                v = int(np.flatnonzero(bad)[0])
                self._record(violations, RANGE, root,
                             f"sigma[{v}] = {sigma[v]!r} for unreached vertex")
        if not np.all(np.isfinite(delta)):
            v = int(np.flatnonzero(~np.isfinite(delta))[0])
            self._record(violations, RANGE, root, f"delta[{v}] is not finite")
        else:
            bad = delta < -self.policy.atol
            if np.any(bad):
                v = int(np.flatnonzero(bad)[0])
                self._record(violations, RANGE, root,
                             f"delta[{v}] = {delta[v]!r} is negative")
            bad = ~reached & (np.abs(delta) > self.policy.atol)
            if np.any(bad):
                v = int(np.flatnonzero(bad)[0])
                self._record(violations, RANGE, root,
                             f"delta[{v}] = {delta[v]!r} for unreached vertex")
            if abs(float(delta[root])) > self.policy.atol:
                self._record(violations, RANGE, root,
                             f"delta[root] = {delta[root]!r}, expected 0")

    # -- B2 + B3, vectorised over every edge (paranoid) ----------------
    def _check_structure_full(self, g, fwd, scales_active, violations) -> None:
        n = g.num_vertices
        d, sigma, root = fwd.distances, fwd.sigma, fwd.source
        self.metrics.inc("verify.checks", invariant=LEVEL)
        src = g.edge_sources()
        adj = g.adj
        src_reached = d[src] >= 0
        if g.undirected:
            # A reached vertex cannot have an unreached neighbour, and
            # adjacent depths differ by at most one.
            bad = src_reached & (d[adj] < 0)
            if np.any(bad):
                e = int(np.flatnonzero(bad)[0])
                self._record(violations, LEVEL, root,
                             f"reached vertex {int(src[e])} has unreached "
                             f"neighbour {int(adj[e])}")
            both = src_reached & (d[adj] >= 0)
            gap = np.abs(d[src] - d[adj])
            bad = both & (gap > 1)
            if np.any(bad):
                e = int(np.flatnonzero(bad)[0])
                self._record(violations, LEVEL, root,
                             f"neighbour depths {int(d[src[e]])} and "
                             f"{int(d[adj[e]])} differ by more than 1 on "
                             f"edge ({int(src[e])}, {int(adj[e])})")
        # Parent existence: every reached non-root vertex is the head of
        # at least one tree edge (works for directed graphs too — the
        # CSR stores exactly the in-edges seen from each source u).
        tree = src_reached & (d[adj] == d[src] + 1)
        has_parent = np.zeros(n, dtype=bool)
        has_parent[adj[tree]] = True
        bad = (d >= 1) & ~has_parent
        if np.any(bad):
            v = int(np.flatnonzero(bad)[0])
            self._record(violations, LEVEL, root,
                         f"vertex {v} at depth {int(d[v])} has no parent "
                         f"at depth {int(d[v]) - 1}")
        # B3: sigma over tree edges.
        if scales_active:
            self.metrics.inc("verify.skipped", invariant=SIGMA)
            return
        self.metrics.inc("verify.checks", invariant=SIGMA)
        expected = np.zeros(n, dtype=np.float64)
        np.add.at(expected, adj[tree], sigma[src[tree]])
        check = (d >= 1)
        tol = self.policy.rtol * np.maximum(1.0, np.abs(expected)) \
            + self.policy.atol
        bad = check & (np.abs(sigma - expected) > tol)
        if np.any(bad):
            v = int(np.flatnonzero(bad)[0])
            self._record(violations, SIGMA, root,
                         f"sigma[{v}] = {sigma[v]!r}, predecessors sum to "
                         f"{expected[v]!r}")
        if sigma[root] != 0.0 and not self._close(float(sigma[root]), 1.0):
            self._record(violations, SIGMA, root,
                         f"sigma[root] = {sigma[root]!r}, expected 1")

    # -- B2 + B3 on a deterministic vertex sample (sampled) ------------
    def _check_structure_sampled(self, g, fwd, scales_active,
                                 violations) -> None:
        d, sigma, root = fwd.distances, fwd.sigma, fwd.source
        reached = np.flatnonzero(d >= 1)
        if reached.size == 0:
            return
        rng = np.random.default_rng([self.policy.seed, int(root)])
        k = min(self.policy.sample_vertices, reached.size)
        sample = rng.choice(reached, size=k, replace=False)
        self.metrics.inc("verify.checks", invariant=LEVEL)
        # Gather every sampled vertex's CSR row in one shot (the
        # repeat/cumsum trick) so the sample cost is a fixed handful of
        # vectorised ops, not a Python loop per vertex.
        starts = g.indptr[sample]
        counts = g.indptr[sample + 1] - starts
        total = int(counts.sum())
        base = np.repeat(np.cumsum(counts) - counts, counts)
        flat = np.arange(total) - base + np.repeat(starts, counts)
        owner = np.repeat(np.arange(sample.size), counts)
        nbrs = g.adj[flat]
        dn = d[nbrs]
        dv = np.repeat(d[sample], counts)
        if not g.undirected:
            # Directed CSR rows are out-edges; the reachable cone
            # invariant is d[successor] <= d[v] + 1 and reached.
            bad = (dn < 0) | (dn > dv + 1)
            if np.any(bad):
                v = int(sample[owner[np.flatnonzero(bad)[0]]])
                self._record(violations, LEVEL, root,
                             f"vertex {v}: successor outside the "
                             f"reachable cone")
            return
        bad = dn < 0
        if np.any(bad):
            v = int(sample[owner[np.flatnonzero(bad)[0]]])
            self._record(violations, LEVEL, root,
                         f"reached vertex {v} has an unreached neighbour")
            return
        bad = np.abs(dn - dv) > 1
        if np.any(bad):
            v = int(sample[owner[np.flatnonzero(bad)[0]]])
            self._record(violations, LEVEL, root,
                         f"vertex {v}: neighbour depth gap > 1")
            return
        tree = dn == dv - 1
        has_parent = np.bincount(owner[tree], minlength=sample.size) > 0
        if not np.all(has_parent):
            v = int(sample[np.flatnonzero(~has_parent)[0]])
            self._record(violations, LEVEL, root,
                         f"vertex {v} at depth {int(d[v])} has no "
                         f"parent at depth {int(d[v]) - 1}")
            return
        if scales_active:
            self.metrics.inc("verify.skipped", invariant=SIGMA)
            return
        self.metrics.inc("verify.checks", invariant=SIGMA)
        expect = np.bincount(owner[tree], weights=sigma[nbrs[tree]],
                             minlength=sample.size)
        tol = self.policy.rtol * np.maximum(1.0, np.abs(expect)) \
            + self.policy.atol
        bad = np.abs(sigma[sample] - expect) > tol
        if np.any(bad):
            i = int(np.flatnonzero(bad)[0])
            v = int(sample[i])
            self._record(violations, SIGMA, root,
                         f"sigma[{v}] = {sigma[v]!r}, predecessors sum "
                         f"to {expect[i]!r}")

    # -- B4: dependency checksum ---------------------------------------
    def _check_checksum(self, fwd, delta, violations,
                        target_weights=None, source_weight=1.0) -> None:
        self.metrics.inc("verify.checks", invariant=CHECKSUM)
        expect = expected_delta_checksum(fwd.distances, target_weights,
                                         source_weight)
        got = float(delta.sum())
        if not self._close(got, expect):
            self._record(violations, CHECKSUM, fwd.source,
                         f"sum(delta) = {got!r}, distance identity "
                         f"expects {expect!r}")

    # -- unit / reduce checksums ---------------------------------------
    def check_partial(self, partial: np.ndarray, expected_sum: float,
                      rank: int = -1) -> list:
        """Validate a rank's per-unit partial BC vector against the sum
        of its verified per-root contributions."""
        violations: list = []
        self.metrics.inc("verify.checks", invariant=PARTIAL)
        if not np.all(np.isfinite(partial)):
            self._record(violations, PARTIAL, rank,
                         "partial BC vector contains non-finite values")
        elif not self._close(float(partial.sum()), expected_sum):
            self._record(violations, PARTIAL, rank,
                         f"sum(partial) = {float(partial.sum())!r}, "
                         f"committed roots sum to {expected_sum!r}")
        return violations

    def reduce_ok(self, total: np.ndarray, expected_sum: float) -> bool:
        """Checksummed reduce: does the reduced vector's sum match the
        independently-summed per-rank checksums?"""
        self.metrics.inc("verify.checks", invariant=REDUCE)
        if not np.all(np.isfinite(total)):
            self.metrics.inc("verify.violations", invariant=REDUCE)
            return False
        if not self._close(float(total.sum()), expected_sum):
            self.metrics.inc("verify.violations", invariant=REDUCE)
            return False
        return True
